/**
 * @file
 * Tests for the adaptive load search subsystem (src/search) and its
 * supporting pieces: the exact percentile accumulator, the criteria
 * evaluator (including the degraded-probe contract), search-spec
 * parsing/validation, the bracketing + bisection controller against
 * synthetic monotone fixtures, and grid determinism — repeated and
 * 1-vs-4-thread runs must render byte-identical documents.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/stats.hh"
#include "exp/experiments.hh"
#include "exp/spec.hh"
#include "search/search.hh"

using namespace afcsim;
using namespace afcsim::search;

namespace
{

/** Deterministic pseudo-random doubles (no <random> seeding drama). */
double
lcg(std::uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) /
           static_cast<double>(1ull << 53);
}

/**
 * Synthetic monotone fixture: a probe passes exactly when its rate is
 * at or below `threshold`. Above it, either the delivered fraction
 * collapses (degraded=false) or the run degrades to an error record
 * (degraded=true) — both must steer the bracket the same way.
 */
ProbeFn
monotoneProbe(double threshold, bool degraded,
              std::vector<exp::RunPoint> *seen = nullptr)
{
    return [threshold, degraded, seen](const exp::RunPoint &p) {
        if (seen != nullptr)
            seen->push_back(p);
        exp::RunResult r;
        r.point = p;
        r.offeredRate = p.rate;
        if (p.rate <= threshold) {
            r.acceptedRate = p.rate;
            r.avgPacketLatency = 20.0;
        } else if (degraded) {
            r.error = "synthetic watchdog trip";
        } else {
            r.acceptedRate = 0.5 * p.rate;
            r.avgPacketLatency = 400.0;
            r.saturated = true;
        }
        return r;
    };
}

SearchSpec
tinySearchSpec()
{
    SearchSpec s;
    s.enabled = true;
    s.seedRate = 0.1;
    s.rateTolerance = 0.002;
    s.maxProbes = 12;
    s.probeWarmup = 100;
    s.probeMeasure = 300;
    return s;
}

} // namespace

// ---------------------------------------------------------------
// PercentileAccumulator
// ---------------------------------------------------------------

TEST(Percentile, MatchesSortedReference)
{
    PercentileAccumulator acc;
    std::vector<double> ref;
    std::uint64_t state = 42;
    for (int i = 0; i < 1000; ++i) {
        double x = 500.0 * lcg(state);
        acc.add(x);
        ref.push_back(x);
    }
    std::sort(ref.begin(), ref.end());
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(p * static_cast<double>(ref.size())));
        rank = std::min(std::max<std::size_t>(rank, 1), ref.size());
        EXPECT_EQ(acc.quantile(p), ref[rank - 1]) << "p=" << p;
    }
    EXPECT_EQ(acc.quantile(0.0), ref.front());
    EXPECT_EQ(acc.quantile(1.0), ref.back());
}

TEST(Percentile, EdgeCasesAndMerge)
{
    PercentileAccumulator acc;
    EXPECT_EQ(acc.quantile(0.5), 0.0); // empty reports 0
    acc.add(7.0);
    EXPECT_EQ(acc.quantile(0.0), 7.0);
    EXPECT_EQ(acc.quantile(0.99), 7.0);

    PercentileAccumulator lo, hi;
    for (int i = 1; i <= 50; ++i)
        lo.add(static_cast<double>(i));
    for (int i = 51; i <= 100; ++i)
        hi.add(static_cast<double>(i));
    lo.merge(hi);
    EXPECT_EQ(lo.count(), 100u);
    EXPECT_EQ(lo.quantile(0.5), 50.0);
    EXPECT_EQ(lo.quantile(0.95), 95.0);
    lo.reset();
    EXPECT_EQ(lo.count(), 0u);
    EXPECT_EQ(lo.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------
// Criteria evaluation
// ---------------------------------------------------------------

TEST(Criteria, DeliveredFractionFloor)
{
    SearchCriteria c;
    ProbeMetrics m;
    m.offeredRate = 0.5;
    m.acceptedRate = 0.49;
    Evaluation ev = evaluateCriteria(c, m);
    EXPECT_TRUE(ev.pass);

    m.acceptedRate = 0.4; // fraction 0.8, below the 0.9 floor
    ev = evaluateCriteria(c, m);
    EXPECT_FALSE(ev.pass);
    bool found = false;
    for (const auto &r : ev.criteria) {
        if (r.name == "delivered_fraction") {
            found = true;
            EXPECT_FALSE(r.pass);
            EXPECT_NEAR(r.value, 0.8, 1e-12);
            EXPECT_EQ(r.bound, 0.9);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Criteria, DegradedProbeAlwaysFails)
{
    SearchCriteria c;
    c.minDeliveredFraction = 0.0; // disable everything else
    c.requireUnsaturated = false;
    ProbeMetrics m;
    m.error = "watchdog: credit stall";
    Evaluation ev = evaluateCriteria(c, m);
    EXPECT_FALSE(ev.pass);
    ASSERT_EQ(ev.criteria.size(), 1u);
    EXPECT_EQ(ev.criteria[0].name, "clean");
    EXPECT_FALSE(ev.criteria[0].pass);
}

TEST(Criteria, LatencyCeilingsAndKnee)
{
    SearchCriteria c;
    c.maxAvgLatency = 100.0;
    c.maxP99Latency = 300.0;
    c.kneeRatio = 3.0;
    ProbeMetrics m;
    m.offeredRate = 0.4;
    m.acceptedRate = 0.4;
    m.avgPacketLatency = 90.0;
    m.p99PacketLatency = 250.0;
    // Baseline latency 20 -> knee bound 60: avg 90 exceeds it.
    Evaluation ev = evaluateCriteria(c, m, 20.0);
    EXPECT_FALSE(ev.pass);
    // Without a baseline the knee criterion is skipped.
    ev = evaluateCriteria(c, m, 0.0);
    EXPECT_TRUE(ev.pass);
    m.p99PacketLatency = 301.0;
    ev = evaluateCriteria(c, m, 0.0);
    EXPECT_FALSE(ev.pass);
}

TEST(Criteria, JsonShape)
{
    SearchCriteria c;
    ProbeMetrics m;
    m.offeredRate = 0.3;
    m.acceptedRate = 0.3;
    JsonValue j = toJson(evaluateCriteria(c, m));
    ASSERT_TRUE(j.isObject());
    EXPECT_TRUE(j.at("pass").asBool());
    const JsonValue &list = j.at("criteria");
    ASSERT_TRUE(list.isArray());
    ASSERT_GT(list.size(), 0u);
    for (std::size_t i = 0; i < list.size(); ++i) {
        const JsonValue &r = list.at(i);
        EXPECT_TRUE(r.has("name"));
        EXPECT_TRUE(r.has("pass"));
        EXPECT_TRUE(r.has("value"));
        EXPECT_TRUE(r.has("bound"));
    }
}

// ---------------------------------------------------------------
// Spec parsing and expansion
// ---------------------------------------------------------------

TEST(SearchSpecKeys, ApplyAndValidate)
{
    SearchSpec s;
    applySearchKey(s, "enabled", "true");
    applySearchKey(s, "seed_rate", "0.25");
    applySearchKey(s, "tolerance", "0.01");
    applySearchKey(s, "max_probes", "20");
    applySearchKey(s, "min_delivered", "0.8");
    applySearchKey(s, "knee_ratio", "4");
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.seedRate, 0.25);
    EXPECT_EQ(s.rateTolerance, 0.01);
    EXPECT_EQ(s.maxProbes, 20);
    EXPECT_EQ(s.criteria.minDeliveredFraction, 0.8);
    EXPECT_EQ(s.criteria.kneeRatio, 4.0);
    s.validate("t");

    EXPECT_THROW(applySearchKey(s, "bogus", "1"), ConfigError);
    SearchSpec bad = s;
    bad.rateTolerance = 0.0;
    EXPECT_THROW(bad.validate("t"), ConfigError);
    bad = s;
    bad.seedRate = 2.0; // above maxRate
    EXPECT_THROW(bad.validate("t"), ConfigError);
    bad = s;
    bad.maxProbes = 1;
    EXPECT_THROW(bad.validate("t"), ConfigError);
}

TEST(SearchSpecKeys, RatesConflictIsConfigError)
{
    exp::ExperimentSpec spec = exp::ExperimentSpec::fromText(
        "exp.kind = openloop\n"
        "exp.rates = 0.1\n"
        "exp.search = true\n");
    EXPECT_THROW(spec.expand(), ConfigError);
}

TEST(SearchSpecKeys, ExpandSearchGrid)
{
    exp::ExperimentSpec spec = exp::saturationSearchExperiment();
    std::vector<exp::RunPoint> cells = spec.expand();
    ASSERT_EQ(cells.size(), spec.configs.size());
    for (const auto &c : cells) {
        EXPECT_EQ(c.group, "uniform");
        EXPECT_EQ(c.rate, spec.search.seedRate);
        EXPECT_EQ(c.mesh, 8);
    }
}

// ---------------------------------------------------------------
// Controller against synthetic monotone fixtures
// ---------------------------------------------------------------

TEST(SearchController, ConvergesOnMonotoneFixture)
{
    SearchSpec s = tinySearchSpec();
    double threshold = 0.33;
    SearchController c(s, monotoneProbe(threshold, false));
    SearchResult r = c.search(exp::RunPoint{});
    EXPECT_TRUE(r.error.empty());
    EXPECT_TRUE(r.converged);
    EXPECT_LE(static_cast<int>(r.probes.size()), s.maxProbes);
    EXPECT_LE(r.bracketHi - r.bracketLo, s.rateTolerance + 1e-12);
    EXPECT_LE(r.optimumRate, threshold + 1e-12);
    EXPECT_GE(r.optimumRate, threshold - s.rateTolerance - 1e-12);
    // The testing stage re-ran the optimum and it passes.
    EXPECT_EQ(r.finalRun.offeredRate, r.optimumRate);
    EXPECT_TRUE(r.finalEval.pass);
}

TEST(SearchController, DegradedProbesSteerTheBracket)
{
    SearchSpec s = tinySearchSpec();
    double threshold = 0.33;
    SearchController c(s, monotoneProbe(threshold, true));
    SearchResult r = c.search(exp::RunPoint{});
    EXPECT_TRUE(r.error.empty());
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.optimumRate, threshold + 1e-12);
    EXPECT_GE(r.optimumRate, threshold - s.rateTolerance - 1e-12);
    // At least one probe above the threshold degraded — and was
    // recorded as a failing probe, not a search failure.
    bool sawDegraded = false;
    for (const auto &p : r.probes)
        sawDegraded = sawDegraded || !p.metrics.error.empty();
    EXPECT_TRUE(sawDegraded);
}

TEST(SearchController, NoSustainableRateIsASearchError)
{
    SearchSpec s = tinySearchSpec();
    // Threshold below minRate: every probe fails.
    SearchController c(s, monotoneProbe(s.minRate / 2.0, false));
    SearchResult r = c.search(exp::RunPoint{});
    EXPECT_FALSE(r.error.empty());
    EXPECT_FALSE(r.converged);
    EXPECT_GE(r.probes.size(), 1u);
    // No testing stage ran.
    EXPECT_EQ(r.finalRun.offeredRate, 0.0);
}

TEST(SearchController, ProbesRunDarkAndAreReproducible)
{
    SearchSpec s = tinySearchSpec();
    std::vector<exp::RunPoint> seen1, seen2;
    exp::RunPoint cell;
    cell.obsDir = "/tmp/should_not_be_used";
    cell.cfg.obs.trace = true;
    cell.cfg.obs.sampleInterval = 8;
    cell.cfg.obs.streamPath = "/tmp/should_not_stream.csv";

    SearchController c1(s, monotoneProbe(0.4, false, &seen1));
    SearchResult r1 = c1.search(cell);
    SearchController c2(s, monotoneProbe(0.4, false, &seen2));
    SearchResult r2 = c2.search(cell);

    // Identical spec + fixture => identical probe sequence.
    ASSERT_EQ(seen1.size(), seen2.size());
    for (std::size_t i = 0; i < seen1.size(); ++i)
        EXPECT_EQ(seen1[i].rate, seen2[i].rate) << "probe " << i;
    EXPECT_EQ(toJson(r1).dump(2), toJson(r2).dump(2));

    // Every probe ran dark; only the final (testing-stage) point
    // kept the cell's observability settings.
    ASSERT_GE(seen1.size(), 2u);
    for (std::size_t i = 0; i + 1 < seen1.size(); ++i) {
        EXPECT_TRUE(seen1[i].obsDir.empty()) << "probe " << i;
        EXPECT_FALSE(seen1[i].cfg.obs.any()) << "probe " << i;
        EXPECT_TRUE(seen1[i].cfg.obs.streamPath.empty());
    }
    const exp::RunPoint &fin = seen1.back();
    EXPECT_EQ(fin.obsDir, cell.obsDir);
    EXPECT_TRUE(fin.cfg.obs.trace);
}

TEST(SearchController, TwelveProbeBudgetCoversSeedToCap)
{
    // The acceptance budget: seed 0.1 doubling 0.1->0.2->0.4->0.8
    // (4 probes) plus 8 bisections halves the 0.4-wide bracket to
    // 0.0015625 <= 0.002 — exactly 12 probes, converged.
    SearchSpec s = tinySearchSpec();
    SearchController c(s, monotoneProbe(0.55, false));
    SearchResult r = c.search(exp::RunPoint{});
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(static_cast<int>(r.probes.size()), s.maxProbes);
}

// ---------------------------------------------------------------
// Grid determinism (real simulator, tiny scale)
// ---------------------------------------------------------------

TEST(SearchGrid, ByteIdenticalAcrossThreadsAndRepeats)
{
    exp::ExperimentSpec spec;
    spec.name = "search_det";
    spec.kind = exp::RunKind::OpenLoop;
    spec.configs = {FlowControl::Backpressured, FlowControl::Afc};
    spec.warmupCycles = 300;
    spec.measureCycles = 800;
    spec.baseSeed = 5;
    spec.repeats = 2;
    spec.search.enabled = true;
    spec.search.probeWarmup = 200;
    spec.search.probeMeasure = 500;
    spec.search.rateTolerance = 0.01;
    spec.search.maxProbes = 10;

    std::vector<SearchResult> r1 = runSearchGrid(spec, 1);
    std::vector<SearchResult> r4 = runSearchGrid(spec, 4);
    std::vector<SearchResult> again = runSearchGrid(spec, 1);
    ASSERT_EQ(r1.size(), 4u);

    std::string d1 = searchResultsToJson(spec, r1).dump(2);
    EXPECT_EQ(d1, searchResultsToJson(spec, r4).dump(2));
    EXPECT_EQ(d1, searchResultsToJson(spec, again).dump(2));
    EXPECT_EQ(searchResultsToCsv(r1), searchResultsToCsv(r4));
}

TEST(SearchGrid, CsvShape)
{
    SearchSpec s = tinySearchSpec();
    SearchController c(s, monotoneProbe(0.3, false));
    std::vector<SearchResult> results = {c.search(exp::RunPoint{})};
    std::string csv = searchResultsToCsv(results);
    EXPECT_EQ(csv.rfind("index,experiment,group,mesh,flow_control,", 0),
              0u);
    std::size_t rows = 0;
    for (char ch : csv)
        if (ch == '\n')
            ++rows;
    EXPECT_EQ(rows, results.size() + 1); // header + one per search
}
