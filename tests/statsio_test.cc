/**
 * @file
 * Tests for stats serialization (common/statsio.hh): RunningStat /
 * Histogram / NetStats / EnergyReport to JSON (values and
 * round-trip through the parser) and CSV escaping.
 */

#include <gtest/gtest.h>

#include "common/statsio.hh"

using namespace afcsim;

TEST(StatsIo, RunningStatJson)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    JsonValue j = toJson(s);
    EXPECT_EQ(j.at("count").asInt(), 3);
    EXPECT_DOUBLE_EQ(j.at("mean").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(j.at("stddev").asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(j.at("min").asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(j.at("max").asDouble(), 3.0);
    EXPECT_DOUBLE_EQ(j.at("sum").asDouble(), 6.0);
}

TEST(StatsIo, EmptyRunningStatOmitsMoments)
{
    JsonValue j = toJson(RunningStat{});
    EXPECT_EQ(j.at("count").asInt(), 0);
    EXPECT_FALSE(j.has("mean"));
}

TEST(StatsIo, RunningStatJsonRoundTrip)
{
    RunningStat s;
    for (int i = 0; i < 100; ++i)
        s.add(0.37 * i - 11.0);
    std::string text = toJson(s).dump(2);
    std::string err;
    JsonValue back = JsonValue::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.at("count").asInt(), 100);
    EXPECT_EQ(back.at("mean").asDouble(), s.mean());
    EXPECT_EQ(back.at("stddev").asDouble(), s.stddev());
}

TEST(StatsIo, HistogramJsonQuantiles)
{
    Histogram h(1.0, 100);
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    JsonValue j = toJson(h);
    EXPECT_EQ(j.at("count").asInt(), 100);
    EXPECT_NEAR(j.at("p50").asDouble(), h.quantile(0.5), 1e-12);
    EXPECT_NEAR(j.at("p99").asDouble(), h.quantile(0.99), 1e-12);
    EXPECT_FALSE(j.has("buckets"));

    JsonValue jb = toJson(h, /*include_buckets=*/true);
    ASSERT_TRUE(jb.has("buckets"));
    EXPECT_EQ(jb.at("buckets").size(), h.numBuckets());
    EXPECT_DOUBLE_EQ(jb.at("bucket_width").asDouble(), 1.0);
    // Each in-range bucket holds exactly one sample.
    EXPECT_EQ(jb.at("buckets").at(5).asInt(), 1);
}

TEST(StatsIo, NetStatsJson)
{
    NetStats n;
    n.flitsInjected = 10;
    n.flitsDelivered = 9;
    n.packetsInjected = 3;
    n.packetsDelivered = 2;
    n.packetLatency.add(12.0);
    n.packetLatencyHist.add(12.0);
    n.hops.add(2.0);
    JsonValue j = toJson(n);
    EXPECT_EQ(j.at("flits_injected").asInt(), 10);
    EXPECT_EQ(j.at("flits_delivered").asInt(), 9);
    EXPECT_EQ(j.at("packet_latency").at("count").asInt(), 1);
    EXPECT_DOUBLE_EQ(j.at("hops").at("mean").asDouble(), 2.0);
}

TEST(StatsIo, EnergyReportJson)
{
    EnergyReport e;
    e.byComponent[static_cast<int>(EnergyComponent::BufferWrite)] = 2.0;
    e.byComponent[static_cast<int>(EnergyComponent::Link)] = 3.0;
    e.byComponent[static_cast<int>(EnergyComponent::Crossbar)] = 5.0;
    JsonValue j = toJson(e);
    EXPECT_DOUBLE_EQ(j.at("total_pj").asDouble(), 10.0);
    EXPECT_DOUBLE_EQ(j.at("buffer_pj").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(j.at("link_pj").asDouble(), 3.0);
    EXPECT_DOUBLE_EQ(j.at("rest_pj").asDouble(), 5.0);
    // Every component appears in the detail map.
    EXPECT_EQ(j.at("by_component").size(),
              static_cast<std::size_t>(EnergyComponent::NumComponents));
    EXPECT_DOUBLE_EQ(
        j.at("by_component").at(componentName(EnergyComponent::Link))
            .asDouble(),
        3.0);
}

TEST(StatsIo, CsvEscaping)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csvEscape("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(csvEscape("multi\nline"), "\"multi\nline\"");
    EXPECT_EQ(csvEscape(""), "");
}

TEST(StatsIo, CsvRow)
{
    EXPECT_EQ(csvRow({"a", "b,c", "d"}), "a,\"b,c\",d\n");
    EXPECT_EQ(csvRow({}), "\n");
}
