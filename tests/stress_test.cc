/**
 * @file
 * Failure-injection / adversarial stress tests: maximal bursts,
 * on-off (square-wave) load driving AFC mode churn, rectangular
 * meshes, oversized gossip reserves, and histogram/percentile
 * plumbing under load. Every scenario must conserve flits and drain;
 * router-internal panics (overflow, underflow, undrained latches)
 * act as protocol checkers throughout.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "network/network.hh"
#include "traffic/injector.hh"
#include "traffic/openloop.hh"
#include "traffic/patterns.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

class StressAllFc : public ::testing::TestWithParam<FlowControl>
{
};

INSTANTIATE_TEST_SUITE_P(
    Stress, StressAllFc,
    ::testing::Values(FlowControl::Backpressured,
                      FlowControl::Backpressureless, FlowControl::Afc,
                      FlowControl::AfcAlwaysBackpressured,
                      FlowControl::BackpressurelessDrop),
    [](const ::testing::TestParamInfo<FlowControl> &info) {
        std::string n = toString(info.param);
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST_P(StressAllFc, MaximalBurst)
{
    // Every node floods data packets for 200 cycles — far beyond
    // any saturation point — then the network must fully drain.
    NetworkConfig cfg = testConfig();
    Network net(cfg, GetParam());
    Rng rng(31);
    for (int k = 0; k < 200; ++k) {
        for (NodeId s = 0; s < 9; ++s) {
            NodeId d = rng.below(9);
            if (d != s)
                net.nic(s).sendPacket(d, 2, 9, net.now());
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(2000000)) << toString(GetParam());
    expectConservation(net);
}

TEST_P(StressAllFc, RectangularMesh)
{
    NetworkConfig cfg = testConfig(6, 2);
    Network net(cfg, GetParam());
    Rng rng(32);
    for (int k = 0; k < 800; ++k) {
        for (NodeId s = 0; s < 12; ++s) {
            if (rng.chance(0.1)) {
                NodeId d = rng.below(12);
                if (d != s)
                    net.nic(s).sendPacket(d, 2, 3, net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(1000000));
    expectConservation(net);
}

TEST(Stress, SquareWaveLoadChurnsAfc)
{
    // On-off load at a period near the EWMA time constant is the
    // adversarial case for the mode state machine: maximal churn.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector heavy(net, pattern, 0.8, 0.35);
    OpenLoopInjector light(net, pattern, 0.01, 0.35);
    for (int period = 0; period < 12; ++period) {
        for (int c = 0; c < 600; ++c) {
            heavy.tick(net.now());
            net.step();
        }
        for (int c = 0; c < 900; ++c) {
            light.tick(net.now());
            net.step();
        }
    }
    ASSERT_TRUE(net.drain(1000000));
    expectConservation(net);
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_GT(rs.forwardSwitches, 9u);
    EXPECT_GT(rs.reverseSwitches, 9u);
}

TEST(Stress, OversizedGossipReserveStillCorrect)
{
    // X may be any value >= 2L (Sec. III-D); a paranoid reserve just
    // switches earlier.
    NetworkConfig cfg = testConfig();
    cfg.afc.gossipReserve = 7; // > 2L = 4, < smallest vnet (8)
    Network net(cfg, FlowControl::Afc);
    Rng rng(33);
    for (int k = 0; k < 2000; ++k) {
        for (NodeId s = 0; s < 9; ++s) {
            if (rng.chance(0.2)) {
                NodeId d = rng.below(9);
                if (d != s)
                    net.nic(s).sendPacket(d, 2, 5, net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(1000000));
    expectConservation(net);
}

TEST(Stress, DeathOnUndersizedGossipReserve)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    NetworkConfig cfg = testConfig();
    cfg.afc.gossipReserve = 2; // < 2L = 4: unsafe, must be rejected
    EXPECT_DEATH(Network(cfg, FlowControl::Afc), "2L");
}

TEST(Stress, DeathOnVnetSmallerThanReserve)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    NetworkConfig cfg = testConfig();
    cfg.afcVnets = {{4, 1}, {4, 1}, {4, 1}}; // 4 slots == X: unusable
    EXPECT_DEATH(Network(cfg, FlowControl::Afc), "gossip reserve");
}

TEST(Stress, PercentilesOrderedUnderLoad)
{
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol;
    ol.injectionRate = 0.4;
    ol.warmupCycles = 2000;
    ol.measureCycles = 8000;
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless}) {
        OpenLoopResult r = runOpenLoop(cfg, fc, ol);
        EXPECT_GT(r.p50PacketLatency, 0.0);
        EXPECT_LE(r.p50PacketLatency, r.avgPacketLatency * 1.5);
        EXPECT_GE(r.p99PacketLatency, r.p50PacketLatency);
        EXPECT_GE(r.p99PacketLatency, r.avgPacketLatency);
    }
}

TEST(Stress, DeflectionTailWorseThanBackpressured)
{
    // Deflection's randomized misrouting shows up hardest in the
    // tail: at moderate-high load its p99 exceeds backpressured's.
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol;
    ol.injectionRate = 0.45;
    ol.warmupCycles = 2000;
    ol.measureCycles = 10000;
    OpenLoopResult bp = runOpenLoop(cfg, FlowControl::Backpressured, ol);
    OpenLoopResult bpl =
        runOpenLoop(cfg, FlowControl::Backpressureless, ol);
    EXPECT_GT(bpl.p99PacketLatency, bp.p99PacketLatency);
}

TEST(Stress, HistogramMergeAcrossNics)
{
    // The aggregated histogram must contain every delivered packet.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    for (NodeId s = 0; s < 9; ++s) {
        NodeId d = (s + 2) % 9;
        net.nic(s).sendPacket(d, 2, 3, net.now());
    }
    ASSERT_TRUE(net.drain(10000));
    NetStats agg = net.aggregateStats();
    EXPECT_EQ(agg.packetLatencyHist.count(), agg.packetsDelivered);
    EXPECT_NEAR(agg.packetLatencyHist.mean(),
                agg.packetLatency.mean(), 1e-9);
}

TEST(Stress, InjectorDataFractionRespected)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.2, 0.5);
    for (int c = 0; c < 20000; ++c) {
        inj.tick(net.now());
        net.step();
    }
    net.drain(100000);
    NetStats s = net.aggregateStats();
    // Expected flits/packet = 0.5*9 + 0.5*1 = 5.
    double mean_len = static_cast<double>(s.flitsInjected) /
        s.packetsInjected;
    EXPECT_NEAR(mean_len, 5.0, 0.25);
}

TEST(Stress, AfcModeChurnUnderFaultsStillDeliversEverything)
{
    // The issue's mixed-mode fault scenario: square-wave load drives
    // AFC through both modes while flits are being corrupted and
    // repaired by end-to-end retransmission. Conservation must hold
    // including the retransmitted copies, and nothing may be lost.
    NetworkConfig cfg = testConfig();
    cfg.faults.corruptRate = 0.005;
    cfg.reliability.enabled = true;
    cfg.reliability.timeoutCycles = 256;
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector heavy(net, pattern, 0.8, 0.35);
    OpenLoopInjector light(net, pattern, 0.01, 0.35);
    for (int period = 0; period < 6; ++period) {
        for (int c = 0; c < 600; ++c) {
            heavy.tick(net.now());
            net.step();
        }
        for (int c = 0; c < 900; ++c) {
            light.tick(net.now());
            net.step();
        }
    }
    ASSERT_TRUE(net.drain(2000000));
    expectConservation(net);

    RouterStats rs = net.aggregateRouterStats();
    EXPECT_GT(rs.forwardSwitches, 0u);
    EXPECT_GT(rs.reverseSwitches, 0u);

    // The run actually exercised the repair path...
    NetStats s = net.aggregateStats();
    EXPECT_GT(s.flitsCorrupted, 0u);
    EXPECT_GT(s.flitsRetransmitted, 0u);
    EXPECT_EQ(s.packetsFailed, 0u);

    // ...and the lifetime books balance with retransmits included:
    // at quiescence, injected + retransmitted flits were all either
    // delivered or discarded as corrupt/duplicate.
    std::uint64_t injected = 0, retransmitted = 0, delivered = 0;
    std::uint64_t corrupted = 0, duplicate = 0;
    for (NodeId n = 0; n < 9; ++n) {
        const NicLifetime &l = net.nic(n).lifetime();
        injected += l.flitsInjected;
        retransmitted += l.flitsRetransmitted;
        delivered += l.flitsDelivered;
        corrupted += l.flitsCorrupted;
        duplicate += l.flitsDuplicate;
    }
    EXPECT_EQ(injected + retransmitted,
              delivered + corrupted + duplicate);
    EXPECT_EQ(delivered, injected); // each unique flit accepted once
}

TEST(Stress, OldestFirstDeflectionBoundsAge)
{
    // With oldest-first priorities the max packet latency stays far
    // tighter than the mean would suggest even past saturation.
    NetworkConfig cfg = testConfig();
    cfg.oldestFirstDeflection = true;
    Network net(cfg, FlowControl::Backpressureless);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.5, 0.35);
    for (int c = 0; c < 8000; ++c) {
        inj.tick(net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(1000000));
    expectConservation(net);
}

} // namespace
} // namespace afcsim
