/**
 * @file
 * Shared helpers for afcsim tests: small network configs, one-shot
 * packet delivery drivers, and conservation checks.
 */

#ifndef AFCSIM_TESTS_TESTUTIL_HH
#define AFCSIM_TESTS_TESTUTIL_HH

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/config.hh"
#include "network/network.hh"

namespace afcsim
{

/** A small test configuration (defaults to the paper's 3x3). */
inline NetworkConfig
testConfig(int w = 3, int h = 3)
{
    NetworkConfig cfg;
    cfg.width = w;
    cfg.height = h;
    cfg.seed = 12345;
    return cfg;
}

/**
 * Send one packet and step until it is fully delivered; returns the
 * delivery cycle, or nullopt on timeout.
 */
inline std::optional<Cycle>
deliverOne(Network &net, NodeId src, NodeId dest, VnetId vnet, int len,
           Cycle timeout = 10000)
{
    std::uint64_t before = net.nic(dest).stats().packetsDelivered;
    net.nic(src).sendPacket(dest, vnet, len, net.now());
    for (Cycle i = 0; i < timeout; ++i) {
        net.step();
        if (net.nic(dest).stats().packetsDelivered > before)
            return net.now() - 1; // delivery happened in the step
    }
    return std::nullopt;
}

/** Assert that every injected flit was delivered and nothing remains. */
inline void
expectConservation(Network &net)
{
    NetStats s = net.aggregateStats();
    EXPECT_EQ(s.flitsInjected, s.flitsDelivered);
    EXPECT_EQ(s.packetsInjected, s.packetsDelivered);
    EXPECT_EQ(net.flitsInFlight(), 0u);
    EXPECT_TRUE(net.quiescent());
}

} // namespace afcsim

#endif // AFCSIM_TESTS_TESTUTIL_HH
