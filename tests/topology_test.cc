/**
 * @file
 * Unit tests for the mesh topology and routing functions.
 */

#include <gtest/gtest.h>

#include "topology/mesh.hh"
#include "topology/routing.hh"

namespace afcsim
{
namespace
{

TEST(Mesh, CoordRoundTrip)
{
    Mesh m(4, 3);
    for (NodeId n = 0; n < m.numNodes(); ++n)
        EXPECT_EQ(m.nodeAt(m.coordOf(n)), n);
}

TEST(Mesh, NeighborsInterior)
{
    Mesh m(3, 3);
    NodeId center = m.nodeAt({1, 1});
    EXPECT_EQ(m.neighbor(center, kEast), m.nodeAt({2, 1}));
    EXPECT_EQ(m.neighbor(center, kWest), m.nodeAt({0, 1}));
    EXPECT_EQ(m.neighbor(center, kNorth), m.nodeAt({1, 0}));
    EXPECT_EQ(m.neighbor(center, kSouth), m.nodeAt({1, 2}));
}

TEST(Mesh, NeighborsAtEdges)
{
    Mesh m(3, 3);
    NodeId nw = m.nodeAt({0, 0});
    EXPECT_EQ(m.neighbor(nw, kWest), kInvalidNode);
    EXPECT_EQ(m.neighbor(nw, kNorth), kInvalidNode);
    EXPECT_NE(m.neighbor(nw, kEast), kInvalidNode);
    EXPECT_NE(m.neighbor(nw, kSouth), kInvalidNode);
}

TEST(Mesh, NeighborSymmetry)
{
    Mesh m(5, 4);
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        for (int d = 0; d < kNumNetPorts; ++d) {
            NodeId nbr = m.neighbor(n, static_cast<Direction>(d));
            if (nbr != kInvalidNode) {
                EXPECT_EQ(m.neighbor(nbr,
                          opposite(static_cast<Direction>(d))), n);
            }
        }
    }
}

TEST(Mesh, PositionClassification3x3)
{
    Mesh m(3, 3);
    EXPECT_EQ(m.positionOf(m.nodeAt({0, 0})), RouterPosition::Corner);
    EXPECT_EQ(m.positionOf(m.nodeAt({2, 0})), RouterPosition::Corner);
    EXPECT_EQ(m.positionOf(m.nodeAt({0, 2})), RouterPosition::Corner);
    EXPECT_EQ(m.positionOf(m.nodeAt({2, 2})), RouterPosition::Corner);
    EXPECT_EQ(m.positionOf(m.nodeAt({1, 0})), RouterPosition::Edge);
    EXPECT_EQ(m.positionOf(m.nodeAt({0, 1})), RouterPosition::Edge);
    EXPECT_EQ(m.positionOf(m.nodeAt({1, 1})), RouterPosition::Center);
}

TEST(Mesh, PositionCounts8x8)
{
    Mesh m(8, 8);
    int corners = 0, edges = 0, centers = 0;
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        switch (m.positionOf(n)) {
          case RouterPosition::Corner: ++corners; break;
          case RouterPosition::Edge: ++edges; break;
          case RouterPosition::Center: ++centers; break;
        }
    }
    EXPECT_EQ(corners, 4);
    EXPECT_EQ(edges, 24);
    EXPECT_EQ(centers, 36);
}

TEST(Mesh, HopDistance)
{
    Mesh m(4, 4);
    EXPECT_EQ(m.hopDistance(m.nodeAt({0, 0}), m.nodeAt({3, 3})), 6);
    EXPECT_EQ(m.hopDistance(m.nodeAt({1, 2}), m.nodeAt({1, 2})), 0);
    EXPECT_EQ(m.hopDistance(m.nodeAt({2, 1}), m.nodeAt({0, 1})), 2);
}

TEST(Mesh, OppositeDirections)
{
    EXPECT_EQ(opposite(kEast), kWest);
    EXPECT_EQ(opposite(kWest), kEast);
    EXPECT_EQ(opposite(kNorth), kSouth);
    EXPECT_EQ(opposite(kSouth), kNorth);
}

TEST(Routing, DorXFirst)
{
    Mesh m(3, 3);
    // From (0,0) to (2,2): X first -> East.
    EXPECT_EQ(dorRoute(m, m.nodeAt({0, 0}), m.nodeAt({2, 2})), kEast);
    // Same column -> Y movement.
    EXPECT_EQ(dorRoute(m, m.nodeAt({1, 0}), m.nodeAt({1, 2})), kSouth);
    EXPECT_EQ(dorRoute(m, m.nodeAt({1, 2}), m.nodeAt({1, 0})), kNorth);
    // At destination -> Local.
    EXPECT_EQ(dorRoute(m, 4, 4), kLocal);
}

TEST(Routing, DorReachesDestination)
{
    Mesh m(5, 5);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            NodeId at = s;
            int steps = 0;
            while (at != d) {
                Direction dir = dorRoute(m, at, d);
                ASSERT_NE(dir, kLocal);
                at = m.neighbor(at, dir);
                ASSERT_NE(at, kInvalidNode);
                ASSERT_LE(++steps, m.hopDistance(s, d));
            }
            EXPECT_EQ(steps, m.hopDistance(s, d));
        }
    }
}

TEST(Routing, ProductivePortsReduceDistance)
{
    Mesh m(4, 4);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            PortSet ps = productivePorts(m, s, d);
            if (s == d) {
                EXPECT_TRUE(ps.empty());
                continue;
            }
            EXPECT_GT(ps.count, 0);
            for (int i = 0; i < ps.count; ++i) {
                NodeId next = m.neighbor(s, ps.ports[i]);
                ASSERT_NE(next, kInvalidNode);
                EXPECT_EQ(m.hopDistance(next, d),
                          m.hopDistance(s, d) - 1);
            }
        }
    }
}

TEST(Routing, ProductiveContainsDorPort)
{
    Mesh m(4, 4);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_TRUE(productivePorts(m, s, d)
                            .contains(dorRoute(m, s, d)));
        }
    }
}

TEST(Routing, LookaheadMatchesNextHopRoute)
{
    Mesh m(4, 4);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            if (s == d)
                continue;
            Direction out = dorRoute(m, s, d);
            NodeId next = m.neighbor(s, out);
            EXPECT_EQ(lookaheadRoute(m, s, out, d),
                      dorRoute(m, next, d));
        }
    }
}

TEST(Routing, DirNames)
{
    EXPECT_EQ(dirName(kEast), "E");
    EXPECT_EQ(dirName(kWest), "W");
    EXPECT_EQ(dirName(kNorth), "N");
    EXPECT_EQ(dirName(kSouth), "S");
    EXPECT_EQ(dirName(kLocal), "L");
}

} // namespace
} // namespace afcsim
