/**
 * @file
 * Tests for the event-tracing facility: lifecycle completeness
 * (every injected flit produces inject/dispatch/deliver events),
 * mode-switch events, drop events, and the CSV backend format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "network/network.hh"
#include "network/trace.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

/** Counts events per kind for assertions. */
class CountingTracer : public FlitTracer
{
  public:
    void
    onInject(NodeId, const Flit &, Cycle) override
    {
        ++injects;
    }
    void
    onDispatch(NodeId, Direction, const Flit &, Cycle,
               bool productive) override
    {
        ++dispatches;
        if (!productive)
            ++deflects;
    }
    void
    onDeliver(NodeId, const Flit &, Cycle) override
    {
        ++delivers;
    }
    void
    onDrop(NodeId, const Flit &, Cycle) override
    {
        ++drops;
    }
    void
    onModeSwitch(NodeId, bool to_bp, bool gossip_flag, Cycle) override
    {
        ++(to_bp ? toBp : toBpl);
        if (gossip_flag)
            ++gossip;
    }

    std::uint64_t injects = 0, dispatches = 0, deflects = 0,
                  delivers = 0, drops = 0, toBp = 0, toBpl = 0,
                  gossip = 0;
};

TEST(Trace, LifecycleCountsConsistent)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    CountingTracer tracer;
    net.setTracer(&tracer);
    for (NodeId s = 0; s < 9; ++s) {
        NodeId d = (s + 4) % 9;
        if (d != s)
            net.nic(s).sendPacket(d, 2, 5, net.now());
    }
    ASSERT_TRUE(net.drain(50000));
    NetStats stats = net.aggregateStats();
    EXPECT_EQ(tracer.injects, stats.flitsInjected);
    EXPECT_EQ(tracer.delivers, stats.flitsDelivered);
    // Every flit dispatches once per hop plus once for ejection.
    EXPECT_EQ(tracer.dispatches,
              net.aggregateRouterStats().flitsRouted);
    EXPECT_EQ(tracer.deflects, 0u); // DOR never misroutes
    EXPECT_EQ(tracer.drops, 0u);
}

TEST(Trace, DeflectionEventsMarked)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    CountingTracer tracer;
    net.setTracer(&tracer);
    for (int k = 0; k < 60; ++k) {
        for (NodeId s = 0; s < 9; ++s) {
            if (s != 4)
                net.nic(s).sendPacket(4, 0, 1, net.now());
        }
        net.run(2);
    }
    ASSERT_TRUE(net.drain(100000));
    EXPECT_GT(tracer.deflects, 0u);
    EXPECT_EQ(tracer.deflects,
              net.aggregateRouterStats().flitsDeflected);
}

TEST(Trace, ModeSwitchEvents)
{
    NetworkConfig cfg = testConfig(2, 2);
    cfg.afc.cornerHigh = 1e-4;
    cfg.afc.cornerLow = 5e-5;
    Network net(cfg, FlowControl::Afc);
    CountingTracer tracer;
    net.setTracer(&tracer);
    net.nic(0).sendPacket(3, 0, 1, net.now());
    ASSERT_TRUE(net.drain(1000));
    net.run(2000); // let the EWMA decay and reverse switches fire
    EXPECT_GT(tracer.toBp, 0u);
    EXPECT_GT(tracer.toBpl, 0u);
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_EQ(tracer.toBp, rs.forwardSwitches);
    EXPECT_EQ(tracer.toBpl, rs.reverseSwitches);
}

TEST(Trace, DropEvents)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::BackpressurelessDrop);
    CountingTracer tracer;
    net.setTracer(&tracer);
    for (int k = 0; k < 60; ++k) {
        for (NodeId s = 0; s < 9; ++s) {
            if (s != 4)
                net.nic(s).sendPacket(4, 0, 1, net.now());
        }
        net.run(2);
    }
    ASSERT_TRUE(net.drain(200000));
    EXPECT_GT(tracer.drops, 0u);
}

TEST(Trace, CsvFormat)
{
    std::ostringstream out;
    CsvTracer tracer(out);
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    net.setTracer(&tracer);
    net.nic(0).sendPacket(1, 0, 1, net.now());
    ASSERT_TRUE(net.drain(1000));

    std::string text = out.str();
    // Header plus at least inject, 2 dispatches, deliver.
    EXPECT_NE(text.find("cycle,event,node"), std::string::npos);
    EXPECT_NE(text.find(",inject,0,"), std::string::npos);
    EXPECT_NE(text.find(",dispatch,"), std::string::npos);
    EXPECT_NE(text.find(",deliver,1,"), std::string::npos);
    EXPECT_GE(tracer.events(), 4u);

    // Every line has the same number of commas as the header.
    std::istringstream lines(text);
    std::string line, header;
    std::getline(lines, header);
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    while (std::getline(lines, line))
        EXPECT_EQ(commas(line), commas(header)) << line;
}

TEST(Trace, DetachStopsEvents)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    CountingTracer tracer;
    net.setTracer(&tracer);
    net.nic(0).sendPacket(1, 0, 1, net.now());
    ASSERT_TRUE(net.drain(1000));
    std::uint64_t before = tracer.dispatches;
    net.setTracer(nullptr);
    net.nic(0).sendPacket(1, 0, 1, net.now());
    ASSERT_TRUE(net.drain(1000));
    EXPECT_EQ(tracer.dispatches, before);
}

} // namespace
} // namespace afcsim
