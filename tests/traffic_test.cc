/**
 * @file
 * Tests for traffic patterns, the open-loop injector and the
 * open-loop harness.
 */

#include <gtest/gtest.h>

#include <map>

#include "traffic/injector.hh"
#include "traffic/openloop.hh"
#include "traffic/patterns.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

TEST(Patterns, NeverSelfAddressed)
{
    Mesh mesh(4, 4);
    Rng rng(1);
    for (const char *name :
         {"uniform", "transpose", "bitcomp", "hotspot", "neighbor",
          "quadrant"}) {
        auto p = makePattern(name, mesh);
        for (NodeId src = 0; src < mesh.numNodes(); ++src) {
            for (int k = 0; k < 50; ++k) {
                NodeId dest = p->pick(src, rng);
                EXPECT_NE(dest, src) << name;
                EXPECT_TRUE(mesh.valid(dest)) << name;
            }
        }
    }
}

TEST(Patterns, UniformCoversAllDestinations)
{
    Mesh mesh(3, 3);
    UniformPattern p(mesh);
    Rng rng(2);
    std::set<NodeId> seen;
    for (int k = 0; k < 2000; ++k)
        seen.insert(p.pick(4, rng));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Patterns, TransposeMapsCoordinates)
{
    Mesh mesh(4, 4);
    TransposePattern p(mesh);
    Rng rng(3);
    EXPECT_EQ(p.pick(mesh.nodeAt({1, 3}), rng), mesh.nodeAt({3, 1}));
    EXPECT_EQ(p.pick(mesh.nodeAt({0, 2}), rng), mesh.nodeAt({2, 0}));
}

TEST(Patterns, BitComplementMapsCoordinates)
{
    Mesh mesh(4, 4);
    BitComplementPattern p(mesh);
    Rng rng(4);
    EXPECT_EQ(p.pick(mesh.nodeAt({0, 0}), rng), mesh.nodeAt({3, 3}));
    EXPECT_EQ(p.pick(mesh.nodeAt({1, 3}), rng), mesh.nodeAt({2, 0}));
}

TEST(Patterns, HotspotSkewsTraffic)
{
    Mesh mesh(4, 4);
    NodeId hot = mesh.nodeAt({2, 2});
    HotspotPattern p(mesh, hot, 0.5);
    Rng rng(5);
    int hot_count = 0;
    constexpr int kDraws = 4000;
    for (int k = 0; k < kDraws; ++k)
        hot_count += p.pick(0, rng) == hot;
    // 0.5 direct + uniform residue also lands on hot sometimes.
    EXPECT_NEAR(hot_count / double(kDraws), 0.5 + 0.5 / 15.0, 0.04);
}

TEST(Patterns, NeighborPicksAdjacent)
{
    Mesh mesh(3, 3);
    NearNeighborPattern p(mesh);
    Rng rng(6);
    for (int k = 0; k < 200; ++k) {
        NodeId dest = p.pick(4, rng);
        EXPECT_EQ(mesh.hopDistance(4, dest), 1);
    }
}

TEST(Patterns, QuadrantTrafficStaysHome)
{
    Mesh mesh(8, 8);
    QuadrantPattern p(mesh);
    Rng rng(7);
    for (NodeId src = 0; src < mesh.numNodes(); ++src) {
        for (int k = 0; k < 30; ++k) {
            NodeId dest = p.pick(src, rng);
            EXPECT_EQ(p.quadrantOf(dest), p.quadrantOf(src));
        }
    }
}

TEST(Patterns, QuadrantIndexing)
{
    Mesh mesh(8, 8);
    QuadrantPattern p(mesh);
    EXPECT_EQ(p.quadrantOf(mesh.nodeAt({0, 0})), 0);
    EXPECT_EQ(p.quadrantOf(mesh.nodeAt({7, 0})), 1);
    EXPECT_EQ(p.quadrantOf(mesh.nodeAt({0, 7})), 2);
    EXPECT_EQ(p.quadrantOf(mesh.nodeAt({7, 7})), 3);
    EXPECT_EQ(p.quadrantOf(mesh.nodeAt({3, 3})), 0);
    EXPECT_EQ(p.quadrantOf(mesh.nodeAt({4, 4})), 3);
}

TEST(Injector, OfferedRateMatchesTarget)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.3, 0.35);
    for (int k = 0; k < 20000; ++k) {
        inj.tick(net.now());
        net.step();
    }
    double offered =
        inj.offeredFlits() / (9.0 * 20000.0);
    EXPECT_NEAR(offered, 0.3, 0.02);
}

TEST(Injector, PerNodeRates)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    UniformPattern pattern(net.mesh());
    std::vector<double> rates(9, 0.0);
    rates[0] = 0.4;
    OpenLoopInjector inj(net, pattern, rates, 0.0);
    for (int k = 0; k < 5000; ++k) {
        inj.tick(net.now());
        net.step();
    }
    EXPECT_GT(net.nic(0).stats().packetsInjected, 0u);
    for (NodeId n = 1; n < 9; ++n)
        EXPECT_EQ(net.nic(n).stats().packetsInjected, 0u);
}

TEST(OpenLoop, LowLoadAcceptsOffered)
{
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol;
    ol.injectionRate = 0.1;
    ol.warmupCycles = 2000;
    ol.measureCycles = 8000;
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc}) {
        OpenLoopResult r = runOpenLoop(cfg, fc, ol);
        EXPECT_FALSE(r.saturated) << toString(fc);
        EXPECT_NEAR(r.acceptedRate, r.offeredRate, 0.02)
            << toString(fc);
        EXPECT_GT(r.avgPacketLatency, 0.0);
        EXPECT_GT(r.energyPerFlit, 0.0);
    }
}

TEST(OpenLoop, DeflectionSaturatesBeforeBackpressured)
{
    // "AFC and backpressured networks achieve near identical
    // saturation throughput (whereas backpressureless saturates at
    // lower offered loads)" — Sec. V.
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol;
    ol.warmupCycles = 3000;
    ol.measureCycles = 10000;
    ol.injectionRate = 0.55;
    OpenLoopResult bp =
        runOpenLoop(cfg, FlowControl::Backpressured, ol);
    OpenLoopResult bpl =
        runOpenLoop(cfg, FlowControl::Backpressureless, ol);
    EXPECT_GE(bpl.avgPacketLatency, bp.avgPacketLatency);
    EXPECT_LE(bpl.acceptedRate, bp.acceptedRate + 0.02);
}

TEST(OpenLoop, LatencyRisesWithLoad)
{
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol;
    ol.warmupCycles = 2000;
    ol.measureCycles = 6000;
    double prev = 0.0;
    for (double rate : {0.05, 0.2, 0.4}) {
        ol.injectionRate = rate;
        OpenLoopResult r =
            runOpenLoop(cfg, FlowControl::Backpressured, ol);
        EXPECT_GT(r.avgPacketLatency, prev);
        prev = r.avgPacketLatency;
    }
}

TEST(OpenLoop, QuadrantExperimentShape)
{
    // Miniature Sec. V-B: hot NW quadrant, cool elsewhere.
    NetworkConfig cfg = testConfig(4, 4);
    OpenLoopConfig ol;
    ol.warmupCycles = 2000;
    ol.measureCycles = 6000;
    QuadrantResult qr = runQuadrantExperiment(
        cfg, FlowControl::Backpressured, ol, 0.5, 0.05);
    EXPECT_GT(qr.quadrantPackets[0], qr.quadrantPackets[3]);
    // The hot quadrant's latency exceeds the cool quadrants'.
    EXPECT_GT(qr.quadrantPacketLatency[0],
              qr.quadrantPacketLatency[3]);
}

} // namespace
} // namespace afcsim
