/**
 * @file
 * Tests for the runtime watchdogs (src/fault/watchdog): an injected
 * deadlock (credit loss wedges the backpressured network) and an
 * injected livelock (hotspot starvation under randomized deflection
 * priorities) are each detected within their configured window and
 * reported as a recoverable SimError carrying a diagnostic snapshot.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.hh"
#include "common/rng.hh"
#include "fault/watchdog.hh"
#include "network/network.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

/**
 * Drive `net` with random vnet-2 traffic until a watchdog fires;
 * returns the SimError message (fails the test on no detection).
 */
std::string
runUntilWatchdog(Network &net, Cycle budget, double send_chance)
{
    Rng rng(31);
    try {
        int nodes = net.config().numNodes();
        for (Cycle c = 0; c < budget; ++c) {
            for (NodeId src = 0; src < nodes; ++src) {
                if (rng.chance(send_chance) &&
                    net.nic(src).queuedFlits(2) < 50) {
                    NodeId dest = rng.below(nodes);
                    if (dest != src)
                        net.nic(src).sendPacket(dest, 2, 5, net.now());
                }
            }
            net.step();
        }
    } catch (const SimError &e) {
        return e.what();
    }
    ADD_FAILURE() << "watchdog did not fire within " << budget
                  << " cycles";
    return "";
}

/**
 * Injected deadlock: lost credits permanently wedge the
 * backpressured network; with the credit checker off, the progress
 * watchdog must still catch the hang within its window.
 */
TEST(Watchdog, DeadlockDetectedWithinWindow)
{
    NetworkConfig cfg = testConfig();
    cfg.faults.creditLossRate = 0.4;
    cfg.watchdog.intervalCycles = 256;
    cfg.watchdog.progressWindowCycles = 1500;
    cfg.watchdog.creditCheck = false;
    Network net(cfg, FlowControl::Backpressured);

    std::string msg = runUntilWatchdog(net, 100000, 0.3);
    EXPECT_NE(msg.find("no forward progress (deadlock suspected)"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("diagnostic snapshot"), std::string::npos) << msg;
}

/** The credit-consistency checker catches the very first lost
 *  credit, long before the network actually wedges. */
TEST(Watchdog, CreditCheckDetectsLostCredit)
{
    NetworkConfig cfg = testConfig();
    cfg.faults.creditLossRate = 0.1;
    cfg.watchdog.intervalCycles = 64;
    Network net(cfg, FlowControl::Backpressured);

    std::string msg = runUntilWatchdog(net, 50000, 0.3);
    EXPECT_NE(msg.find("credit-consistency violation"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("diagnostic snapshot"), std::string::npos) << msg;
}

/**
 * Injected livelock: a saturated hotspot under randomized deflection
 * priorities starves some flit past the age bound.
 */
TEST(Watchdog, LivelockDetectedWithinWindow)
{
    NetworkConfig cfg = testConfig();
    cfg.watchdog.intervalCycles = 64;
    cfg.watchdog.maxFlitAgeCycles = 500;
    Network net(cfg, FlowControl::Backpressureless);

    std::string msg;
    try {
        for (Cycle c = 0; c < 60000; ++c) {
            for (NodeId src = 1; src < 9; ++src) {
                if (net.nic(src).queuedFlits(2) < 50)
                    net.nic(src).sendPacket(0, 2, 5, net.now());
            }
            net.step();
        }
        FAIL() << "livelock watchdog did not fire";
    } catch (const SimError &e) {
        msg = e.what();
    }
    EXPECT_NE(msg.find("livelock suspected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("diagnostic snapshot"), std::string::npos) << msg;
}

/** Healthy traffic under default watchdogs never trips a check. */
TEST(Watchdog, QuietOnHealthyTraffic)
{
    NetworkConfig cfg = testConfig();
    ASSERT_TRUE(cfg.watchdog.enabled);
    cfg.watchdog.intervalCycles = 64; // sweep often
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc}) {
        Network net(cfg, fc);
        Rng rng(17);
        for (int k = 0; k < 1500; ++k) {
            for (NodeId src = 0; src < 9; ++src) {
                if (rng.chance(0.1)) {
                    NodeId dest = rng.below(9);
                    if (dest != src)
                        net.nic(src).sendPacket(dest, 2, 5, net.now());
                }
            }
            net.step();
        }
        EXPECT_TRUE(net.drain(300000)) << toString(fc);
        expectConservation(net);
    }
}

/** The snapshot is available standalone and names every node. */
TEST(Watchdog, SnapshotDescribesRouterState)
{
    Network net(testConfig(), FlowControl::Afc);
    net.nic(0).sendPacket(8, 2, 5, net.now());
    net.run(3);
    std::string snap = Watchdog::snapshot(net, net.now());
    EXPECT_NE(snap.find("diagnostic snapshot"), std::string::npos);
    EXPECT_NE(snap.find("node 0"), std::string::npos);
    EXPECT_NE(snap.find("node 8"), std::string::npos);
    EXPECT_NE(snap.find("ewma="), std::string::npos);
}

} // namespace
} // namespace afcsim
