/**
 * @file
 * afcsim-exp: unified experiment CLI. Runs any named paper
 * experiment or an ad-hoc sweep described by a spec file, executes
 * the run grid on a thread pool, and exports structured results as
 * JSON/CSV alongside a human-readable summary table.
 *
 * Usage:
 *   afcsim-exp --list
 *   afcsim-exp --experiment openloop_sweep --threads 4 \
 *              --json sweep.json [--csv sweep.csv]
 *   afcsim-exp --config my_sweep.cfg --json out.json --validate
 *   afcsim-exp --check-json out.json
 *
 * Overrides (apply on top of the named/filed spec):
 *   --rates 0.1,0.2  --configs bp,bless,afc  --workloads water,apache
 *   --mesh 3,4       --pattern transpose     --repeats N  --seed N
 *   --scale F        --warmup N  --measure N --drain N
 * Output / execution:
 *   --threads N      (0 = hardware concurrency; default 1)
 *   --json PATH      --csv PATH   --indent N (default 2)
 *   --telemetry      include per-run wall-clock in the JSON
 *                    (off by default: JSON is then bit-identical
 *                    for every --threads value)
 *   --validate       re-read and structurally check the JSON
 *   --quiet          no per-run progress lines
 * Observability (side files; the stats JSON stays bit-identical):
 *   --obs-dir PATH   per-run Chrome trace + metric-series exports
 *   --obs-interval N sampler period  --obs-trace  force tracing on
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>
#include <memory>

#include "common/error.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "exp/experiments.hh"
#include "exp/journal.hh"
#include "exp/result.hh"
#include "exp/runner.hh"

using namespace afcsim;
using namespace afcsim::exp;

namespace
{

/** GNU-style "--key value" / "--key=value" / bare "--flag" parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0)
                AFCSIM_CONFIG_ERROR("unexpected argument '", arg,
                             "' (options start with --)");
            arg = arg.substr(2);
            auto eq = arg.find('=');
            if (eq != std::string::npos) {
                kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
            } else if (i + 1 < argc && !isFlag(arg) &&
                       std::string(argv[i + 1]).rfind("--", 0) != 0) {
                kv_.emplace_back(arg, argv[++i]);
            } else {
                kv_.emplace_back(arg, "");
            }
        }
    }

    bool
    has(const std::string &key) const
    {
        for (const auto &[k, v] : kv_)
            if (k == key)
                return true;
        return false;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        for (const auto &[k, v] : kv_)
            if (k == key)
                return v;
        return fallback;
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        std::string v = get(key);
        return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        std::string v = get(key);
        return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
    }

    void
    rejectUnknown(const std::vector<std::string> &known) const
    {
        for (const auto &[k, v] : kv_) {
            bool ok = false;
            for (const auto &name : known)
                ok = ok || name == k;
            if (!ok)
                AFCSIM_CONFIG_ERROR("unknown option '--", k,
                             "' (see afcsim-exp --help)");
        }
    }

  private:
    static bool
    isFlag(const std::string &key)
    {
        return key == "list" || key == "help" || key == "telemetry" ||
               key == "validate" || key == "quiet" ||
               key == "obs-trace" || key == "obs-stream";
    }

    std::vector<std::pair<std::string, std::string>> kv_;
};

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
applyOverrides(ExperimentSpec &spec, const Args &args)
{
    if (args.has("rates")) {
        spec.rates.clear();
        for (const auto &r : splitList(args.get("rates")))
            spec.rates.push_back(std::strtod(r.c_str(), nullptr));
    }
    if (args.has("fault-rates")) {
        spec.faultRates.clear();
        for (const auto &r : splitList(args.get("fault-rates")))
            spec.faultRates.push_back(
                std::strtod(r.c_str(), nullptr));
    }
    if (args.has("configs")) {
        spec.configs.clear();
        for (const auto &c : splitList(args.get("configs")))
            spec.configs.push_back(flowControlFromString(c));
    }
    if (args.has("workloads"))
        spec.workloads = splitList(args.get("workloads"));
    if (args.has("mesh")) {
        spec.meshSizes.clear();
        for (const auto &m : splitList(args.get("mesh")))
            spec.meshSizes.push_back(
                static_cast<int>(std::strtol(m.c_str(), nullptr, 10)));
    }
    if (args.has("pattern"))
        spec.pattern = args.get("pattern");
    if (args.has("repeats"))
        spec.repeats = static_cast<int>(args.getInt("repeats", 1));
    if (args.has("seed"))
        spec.baseSeed =
            static_cast<std::uint64_t>(args.getInt("seed", 7));
    if (args.has("scale"))
        spec.scale = args.getDouble("scale", 1.0);
    if (args.has("warmup"))
        spec.warmupCycles =
            static_cast<Cycle>(args.getInt("warmup", 0));
    if (args.has("measure"))
        spec.measureCycles =
            static_cast<Cycle>(args.getInt("measure", 0));
    if (args.has("drain"))
        spec.drainCycles = static_cast<Cycle>(args.getInt("drain", 0));
    if (args.has("ckpt-interval"))
        spec.ckptInterval =
            static_cast<Cycle>(args.getInt("ckpt-interval", 0));
    if (args.has("max-attempts"))
        spec.maxAttempts =
            static_cast<int>(args.getInt("max-attempts", 3));
    // Shards parallelize cycles *within* one simulation; --threads
    // parallelizes grid points *across* simulations. Both are pure
    // execution knobs (byte-identical exports), so they compose.
    if (args.has("shards"))
        spec.base.shards =
            static_cast<int>(args.getInt("shards", 1));

    // Observability: --obs-dir turns on exports (trace + series with
    // a default sampling interval unless the spec already set them);
    // --obs-interval / --obs-trace refine what gets recorded.
    if (args.has("obs-dir")) {
        spec.obsDir = args.get("obs-dir");
        if (!spec.base.obs.any()) {
            spec.base.obs.trace = true;
            spec.base.obs.sampleInterval = 64;
        }
    }
    if (args.has("obs-interval"))
        spec.base.obs.sampleInterval =
            static_cast<Cycle>(args.getInt("obs-interval", 0));
    if (args.has("obs-trace"))
        spec.base.obs.trace = true;
    // --obs-stream appends evicted sampler frames to the per-run
    // series file instead of dropping them (expand() checks that
    // obs-dir and a sampler interval are set).
    if (args.has("obs-stream"))
        spec.obsStream = true;
}

/**
 * Structural validation of an emitted result document. Returns an
 * empty string when valid, else a description of the first problem.
 */
std::string
validateDocument(const JsonValue &doc)
{
    if (!doc.isObject())
        return "document is not a JSON object";
    for (const char *key : {"experiment", "spec", "runs", "aggregates"})
        if (!doc.has(key))
            return std::string("missing top-level key '") + key + "'";
    const JsonValue &runs = doc.at("runs");
    if (!runs.isArray() || runs.size() == 0)
        return "'runs' is empty or not an array";
    std::size_t errors = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const JsonValue &run = runs.at(i);
        for (const char *key : {"index", "group", "flow_control", "seed"})
            if (!run.has(key))
                return "run " + std::to_string(i) +
                       " missing key '" + key + "'";
        if (run.at("index").asInt() != static_cast<std::int64_t>(i))
            return "run " + std::to_string(i) + " has index " +
                   std::to_string(run.at("index").asInt()) +
                   " (grid order broken)";
        if (run.has("error")) {
            // Error record: identity + error text only.
            ++errors;
            if (run.at("error").asString().empty())
                return "run " + std::to_string(i) +
                       " has an empty error record";
            continue;
        }
        for (const char *key : {"metrics", "energy", "net"})
            if (!run.has(key))
                return "run " + std::to_string(i) +
                       " missing key '" + key + "'";
        const JsonValue &m = run.at("metrics");
        for (const char *key :
             {"runtime_cycles", "avg_packet_latency", "energy_total_pj"})
            if (!m.has(key))
                return "run " + std::to_string(i) +
                       " metrics missing '" + key + "'";
    }
    if (!doc.at("aggregates").isArray())
        return "'aggregates' is not an array";
    if (doc.at("aggregates").size() == 0 && errors < runs.size())
        return "'aggregates' is empty despite successful runs";
    return "";
}

int
checkJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "afcsim-exp: cannot open '%s'\n",
                     path.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    JsonValue doc = JsonValue::parse(ss.str(), &error);
    if (!error.empty()) {
        std::fprintf(stderr, "afcsim-exp: %s: parse error: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    std::string problem = validateDocument(doc);
    if (!problem.empty()) {
        std::fprintf(stderr, "afcsim-exp: %s: invalid: %s\n",
                     path.c_str(), problem.c_str());
        return 1;
    }
    std::printf("%s: valid (%zu runs, %zu aggregates)\n", path.c_str(),
                doc.at("runs").size(), doc.at("aggregates").size());
    return 0;
}

void
printSummary(const ExperimentSpec &spec,
             const std::vector<RunResult> &results)
{
    std::printf("\n=== %s ===\n", spec.name.c_str());
    if (!spec.description.empty())
        std::printf("%s\n", spec.description.c_str());
    TextTable t(26, 12);
    t.setColumns({"fc", "runs", "latency", "p99", "accepted",
                  "pJ/flit", "bp-mode%", "perf-rel", "energy-rel"});
    t.setColumnWidths({18, 6});
    for (const auto &row : aggregate(results)) {
        std::string label = row.group;
        if (row.mesh != spec.base.width ||
            (spec.meshSizes.size() > 1))
            label = std::to_string(row.mesh) + "x" +
                    std::to_string(row.mesh) + " " + label;
        std::vector<std::string> cells = {
            toString(row.fc),
            TextTable::integer(
                static_cast<long long>(row.runtime.count())),
            TextTable::num(row.avgPacketLatency.mean(), 1),
            TextTable::num(row.p99PacketLatency.mean(), 1),
            TextTable::num(row.acceptedRate.mean(), 3),
            TextTable::num(row.energyPerFlit.mean(), 2),
            TextTable::percent(row.bpFraction.mean()),
        };
        if (row.perfRel.count() > 0) {
            cells.push_back(TextTable::meanStd(row.perfRel));
            cells.push_back(TextTable::meanStd(row.energyRel));
        }
        t.addRow(label, cells);
    }
    t.print();
}

void
printHelp()
{
    std::printf(
        "afcsim-exp: run a paper experiment or ad-hoc sweep grid\n\n"
        "  --list                     show named experiments\n"
        "  --experiment NAME          run a named experiment\n"
        "  --config FILE              run an ad-hoc spec file\n"
        "  --threads N                worker threads (0 = all cores)\n"
        "  --shards N                 cycle-kernel shards per run\n"
        "                             (intra-run threading; exports\n"
        "                             stay byte-identical)\n"
        "  --json PATH  --csv PATH    structured result export\n"
        "  --validate                 re-read + check the JSON\n"
        "  --check-json PATH          validate an existing artifact\n"
        "  --telemetry                include wall-clock in JSON\n"
        "  --indent N                 JSON indent (default 2)\n"
        "  --quiet                    suppress per-run progress\n"
        "observability:\n"
        "  --obs-dir PATH             export per-run Chrome traces\n"
        "                             and metric series (enables\n"
        "                             tracing + sampling if the spec\n"
        "                             did not already)\n"
        "  --obs-interval N           sampler period in cycles\n"
        "  --obs-trace                force flit-event tracing on\n"
        "  --obs-stream               stream evicted sampler frames\n"
        "                             to the series file (full-length\n"
        "                             series for long runs)\n"
        "crash-safe sweeps:\n"
        "  --resume DIR               journal the grid into DIR:\n"
        "                             completed points are skipped on\n"
        "                             re-invocation, interrupted ones\n"
        "                             restart from their last periodic\n"
        "                             checkpoint; exports match an\n"
        "                             uninterrupted run byte for byte\n"
        "  --ckpt-interval N          checkpoint period in simulated\n"
        "                             cycles (default 2000; 0 = done\n"
        "                             markers only)\n"
        "  --max-attempts N           crashes before a point is\n"
        "                             marked degraded (default 3)\n"
        "overrides: --rates --fault-rates --configs --workloads\n"
        "           --mesh --pattern\n"
        "           --repeats --seed --scale --warmup --measure "
        "--drain\n");
}

} // namespace

int
runMain(int argc, char **argv)
{
    Args args(argc, argv);
    args.rejectUnknown({
        "list", "help", "experiment", "config", "threads", "shards",
        "json",
        "csv", "validate", "check-json", "telemetry", "indent",
        "quiet", "rates", "fault-rates", "configs", "workloads",
        "mesh", "pattern",
        "repeats", "seed", "scale", "warmup", "measure", "drain",
        "obs-dir", "obs-interval", "obs-trace", "obs-stream",
        "resume", "ckpt-interval", "max-attempts",
    });

    if (args.has("help")) {
        printHelp();
        return 0;
    }
    if (args.has("list")) {
        for (const auto &name : experimentNames()) {
            ExperimentSpec spec = experimentByName(name);
            std::printf("%-18s %s\n", name.c_str(),
                        spec.description.c_str());
        }
        return 0;
    }
    if (args.has("check-json"))
        return checkJsonFile(args.get("check-json"));

    ExperimentSpec spec;
    if (args.has("experiment")) {
        spec = experimentByName(args.get("experiment"));
    } else if (args.has("config")) {
        spec = ExperimentSpec::fromFile(args.get("config"));
    } else {
        printHelp();
        return 2;
    }
    applyOverrides(spec, args);
    if (args.has("validate") && !args.has("json"))
        AFCSIM_CONFIG_ERROR("--validate needs --json PATH");

    // Create the export directory (with any missing parents) up
    // front, so a bad --obs-dir fails the invocation with a clear
    // error instead of surfacing as per-run write warnings after the
    // grid already burned its cycles.
    if (!spec.obsDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec.obsDir, ec);
        if (ec)
            AFCSIM_CONFIG_ERROR("cannot create --obs-dir '",
                                spec.obsDir, "': ", ec.message());
    }

    std::unique_ptr<Journal> journal;
    if (args.has("resume")) {
        if (args.get("resume").empty())
            AFCSIM_CONFIG_ERROR("--resume needs a directory");
        journal = std::make_unique<Journal>(args.get("resume"));
        journal->open("afcsim-exp", spec);
    }

    int threads = static_cast<int>(args.getInt("threads", 1));
    ParallelRunner runner(threads);
    auto progress =
        args.has("quiet") ? ParallelRunner::ProgressFn{} : stderrProgress();

    auto outcome = runner.runSpec(spec, progress, journal.get());
    std::fprintf(stderr,
                 "%zu runs on %d thread(s): %.0f ms wall, "
                 "%.2f Msim-cycles/s aggregate\n",
                 outcome.results.size(), runner.threads(),
                 outcome.wallMs, outcome.cyclesPerSec() / 1e6);

    printSummary(spec, outcome.results);

    int rc = 0;
    if (args.has("json")) {
        std::string path = args.get("json");
        int indent = static_cast<int>(args.getInt("indent", 2));
        JsonValue doc = resultsToJson(spec, outcome.results,
                                      args.has("telemetry"));
        writeFile(path, doc.dump(indent) + "\n");
        std::fprintf(stderr, "wrote %s\n", path.c_str());
        if (args.has("validate"))
            rc = checkJsonFile(path);
    }
    if (args.has("csv")) {
        writeFile(args.get("csv"), resultsToCsv(outcome.results));
        std::fprintf(stderr, "wrote %s\n", args.get("csv").c_str());
    }
    return rc;
}

int
main(int argc, char **argv)
{
    // User mistakes (malformed spec files, unknown options, bad
    // overrides) and recoverable sim failures surface as a clear
    // message and a nonzero exit, never an abort or a stack trace.
    try {
        return runMain(argc, argv);
    } catch (const afcsim::Error &e) {
        std::fprintf(stderr, "afcsim-exp: error: %s\n", e.what());
        return 1;
    }
}
