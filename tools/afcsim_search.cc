/**
 * @file
 * afcsim-search: adaptive load search CLI (src/search). Finds the
 * maximum sustainable injection rate per grid cell of a search
 * spec — Nighthawk-style bracketing + bisection against declared
 * criteria, then a full-length testing run at the optimum — and
 * exports SearchResult documents as JSON/CSV alongside a summary
 * table.
 *
 * Usage:
 *   afcsim-search --experiment saturation_search --threads 4 \
 *                 --json sat.json [--csv sat.csv]
 *   afcsim-search --config my_search.cfg --json out.json
 *
 * Overrides (apply on top of the named/filed spec):
 *   --configs bp,bless,afc  --mesh 8  --pattern transpose
 *   --fault-rates 0,0.005   --repeats N  --seed N
 *   --warmup N --measure N          testing-stage budgets
 *   --seed-rate R --tolerance R --max-probes N
 *   --probe-warmup N --probe-measure N --min-rate R --max-rate R
 * Criteria:
 *   --min-delivered F  --max-avg-latency C  --max-p95-latency C
 *   --max-p99-latency C  --knee-ratio F  --baseline-rate R
 * Output / execution:
 *   --threads N   (0 = hardware concurrency; default 1)
 *   --json PATH --csv PATH --indent N (default 2) --quiet
 *   --require-converged   exit 1 unless every search converged
 * Observability (testing-stage side files only; probes run dark):
 *   --obs-dir PATH  --obs-interval N  --obs-trace  --obs-stream
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/table.hh"
#include "exp/experiments.hh"
#include "exp/journal.hh"
#include "search/search.hh"

using namespace afcsim;
using namespace afcsim::exp;
using namespace afcsim::search;

namespace
{

/** GNU-style "--key value" / "--key=value" / bare "--flag" parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0)
                AFCSIM_CONFIG_ERROR("unexpected argument '", arg,
                             "' (options start with --)");
            arg = arg.substr(2);
            auto eq = arg.find('=');
            if (eq != std::string::npos) {
                kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
            } else if (i + 1 < argc && !isFlag(arg) &&
                       std::string(argv[i + 1]).rfind("--", 0) != 0) {
                kv_.emplace_back(arg, argv[++i]);
            } else {
                kv_.emplace_back(arg, "");
            }
        }
    }

    bool
    has(const std::string &key) const
    {
        for (const auto &[k, v] : kv_)
            if (k == key)
                return true;
        return false;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        for (const auto &[k, v] : kv_)
            if (k == key)
                return v;
        return fallback;
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        std::string v = get(key);
        return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        std::string v = get(key);
        return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
    }

    void
    rejectUnknown(const std::vector<std::string> &known) const
    {
        for (const auto &[k, v] : kv_) {
            bool ok = false;
            for (const auto &name : known)
                ok = ok || name == k;
            if (!ok)
                AFCSIM_CONFIG_ERROR("unknown option '--", k,
                             "' (see afcsim-search --help)");
        }
    }

  private:
    static bool
    isFlag(const std::string &key)
    {
        return key == "help" || key == "quiet" ||
               key == "require-converged" || key == "obs-trace" ||
               key == "obs-stream";
    }

    std::vector<std::pair<std::string, std::string>> kv_;
};

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
applyOverrides(ExperimentSpec &spec, const Args &args)
{
    if (args.has("configs")) {
        spec.configs.clear();
        for (const auto &c : splitList(args.get("configs")))
            spec.configs.push_back(flowControlFromString(c));
    }
    if (args.has("mesh")) {
        spec.meshSizes.clear();
        for (const auto &m : splitList(args.get("mesh")))
            spec.meshSizes.push_back(
                static_cast<int>(std::strtol(m.c_str(), nullptr, 10)));
    }
    if (args.has("pattern"))
        spec.pattern = args.get("pattern");
    if (args.has("fault-rates")) {
        spec.faultRates.clear();
        for (const auto &r : splitList(args.get("fault-rates")))
            spec.faultRates.push_back(
                std::strtod(r.c_str(), nullptr));
    }
    if (args.has("repeats"))
        spec.repeats = static_cast<int>(args.getInt("repeats", 1));
    if (args.has("seed"))
        spec.baseSeed =
            static_cast<std::uint64_t>(args.getInt("seed", 7));
    if (args.has("warmup"))
        spec.warmupCycles =
            static_cast<Cycle>(args.getInt("warmup", 0));
    if (args.has("measure"))
        spec.measureCycles =
            static_cast<Cycle>(args.getInt("measure", 0));

    SearchSpec &s = spec.search;
    if (args.has("seed-rate"))
        s.seedRate = args.getDouble("seed-rate", s.seedRate);
    if (args.has("tolerance"))
        s.rateTolerance = args.getDouble("tolerance", s.rateTolerance);
    if (args.has("min-rate"))
        s.minRate = args.getDouble("min-rate", s.minRate);
    if (args.has("max-rate"))
        s.maxRate = args.getDouble("max-rate", s.maxRate);
    if (args.has("max-probes"))
        s.maxProbes = static_cast<int>(
            args.getInt("max-probes", s.maxProbes));
    if (args.has("probe-warmup"))
        s.probeWarmup = static_cast<Cycle>(
            args.getInt("probe-warmup", 0));
    if (args.has("probe-measure"))
        s.probeMeasure = static_cast<Cycle>(
            args.getInt("probe-measure", 0));
    if (args.has("baseline-rate"))
        s.baselineRate = args.getDouble("baseline-rate", s.baselineRate);
    if (args.has("min-delivered"))
        s.criteria.minDeliveredFraction =
            args.getDouble("min-delivered", 0.9);
    if (args.has("max-avg-latency"))
        s.criteria.maxAvgLatency =
            args.getDouble("max-avg-latency", 0.0);
    if (args.has("max-p95-latency"))
        s.criteria.maxP95Latency =
            args.getDouble("max-p95-latency", 0.0);
    if (args.has("max-p99-latency"))
        s.criteria.maxP99Latency =
            args.getDouble("max-p99-latency", 0.0);
    if (args.has("knee-ratio"))
        s.criteria.kneeRatio = args.getDouble("knee-ratio", 0.0);

    // Observability side files for the testing-stage run; probes
    // always run dark (see SearchController).
    if (args.has("obs-dir")) {
        spec.obsDir = args.get("obs-dir");
        if (!spec.base.obs.any()) {
            spec.base.obs.trace = true;
            spec.base.obs.sampleInterval = 64;
        }
    }
    if (args.has("obs-interval"))
        spec.base.obs.sampleInterval =
            static_cast<Cycle>(args.getInt("obs-interval", 0));
    if (args.has("obs-trace"))
        spec.base.obs.trace = true;
    if (args.has("obs-stream"))
        spec.obsStream = true;
}

void
printSummary(const ExperimentSpec &spec,
             const std::vector<SearchResult> &results)
{
    std::printf("\n=== %s ===\n", spec.name.c_str());
    if (!spec.description.empty())
        std::printf("%s\n", spec.description.c_str());
    TextTable t(26, 12);
    t.setColumns({"fc", "probes", "converged", "optimum", "accepted",
                  "latency", "p99", "final-pass"});
    t.setColumnWidths({18, 7, 10});
    for (const auto &r : results) {
        std::string label = r.point.group;
        if (spec.meshSizes.size() > 1 ||
            r.point.mesh != spec.base.width)
            label = std::to_string(r.point.mesh) + "x" +
                    std::to_string(r.point.mesh) + " " + label;
        if (!r.error.empty()) {
            t.addRow(label, {afcsim::toString(r.point.fc),
                             TextTable::integer(static_cast<long long>(
                                 r.probes.size())),
                             "no", "-", "-", "-", "-", "-"});
            continue;
        }
        t.addRow(label,
                 {afcsim::toString(r.point.fc),
                  TextTable::integer(
                      static_cast<long long>(r.probes.size())),
                  r.converged ? "yes" : "no",
                  TextTable::num(r.optimumRate, 4),
                  TextTable::num(r.finalRun.acceptedRate, 4),
                  TextTable::num(r.finalRun.avgPacketLatency, 1),
                  TextTable::num(r.finalRun.p99PacketLatency, 1),
                  r.finalEval.pass ? "yes" : "no"});
    }
    t.print();
}

SearchProgressFn
stderrSearchProgress()
{
    return [](const SearchResult &r, int done, int total) {
        std::fprintf(stderr,
                     "[%3d/%3d] %-24s %-16s %2zu probes  "
                     "optimum %.4f %s\n",
                     done, total, r.point.group.c_str(),
                     afcsim::toString(r.point.fc).c_str(),
                     r.probes.size(), r.optimumRate,
                     r.error.empty()
                         ? (r.converged ? "(converged)" : "(budget out)")
                         : "(failed)");
    };
}

void
printHelp()
{
    std::printf(
        "afcsim-search: find the max sustainable injection rate per\n"
        "grid cell by adaptive search (bracketing + bisection)\n\n"
        "  --experiment NAME          run a named search experiment\n"
        "                             (e.g. saturation_search)\n"
        "  --config FILE              run a spec file (search mode is\n"
        "                             forced on; it must list no rates)\n"
        "  --threads N                worker threads (0 = all cores)\n"
        "  --shards N                 cycle-kernel shards per probe\n"
        "                             (intra-run threading; results\n"
        "                             stay byte-identical)\n"
        "  --json PATH  --csv PATH    structured result export\n"
        "  --indent N                 JSON indent (default 2)\n"
        "  --quiet                    suppress per-search progress\n"
        "  --require-converged        exit 1 unless all converged\n"
        "search:     --seed-rate --tolerance --max-probes --min-rate\n"
        "            --max-rate --probe-warmup --probe-measure\n"
        "criteria:   --min-delivered --max-avg-latency\n"
        "            --max-p95-latency --max-p99-latency\n"
        "            --knee-ratio --baseline-rate\n"
        "grid:       --configs --mesh --pattern --fault-rates\n"
        "            --repeats --seed --warmup --measure\n"
        "obs:        --obs-dir --obs-interval --obs-trace\n"
        "            --obs-stream\n"
        "crash-safe: --resume DIR   journal completed cells into DIR\n"
        "                           and skip them on re-invocation;\n"
        "                           --max-attempts N crashes before a\n"
        "                           cell is marked degraded\n");
}

} // namespace

int
runMain(int argc, char **argv)
{
    Args args(argc, argv);
    args.rejectUnknown({
        "help", "experiment", "config", "threads", "shards", "json",
        "csv",
        "indent", "quiet", "require-converged", "configs", "mesh",
        "pattern", "fault-rates", "repeats", "seed", "warmup",
        "measure", "seed-rate", "tolerance", "min-rate", "max-rate",
        "max-probes", "probe-warmup", "probe-measure",
        "baseline-rate", "min-delivered", "max-avg-latency",
        "max-p95-latency", "max-p99-latency", "knee-ratio",
        "obs-dir", "obs-interval", "obs-trace", "obs-stream",
        "resume", "max-attempts",
    });

    if (args.has("help")) {
        printHelp();
        return 0;
    }

    ExperimentSpec spec;
    if (args.has("experiment")) {
        spec = experimentByName(args.get("experiment"));
    } else if (args.has("config")) {
        spec = ExperimentSpec::fromFile(args.get("config"));
    } else {
        printHelp();
        return 2;
    }
    // This binary always searches, whatever the spec says.
    spec.search.enabled = true;
    applyOverrides(spec, args);
    if (args.has("max-attempts"))
        spec.maxAttempts =
            static_cast<int>(args.getInt("max-attempts", 3));
    // Intra-probe threading; composes with --threads (cells across
    // workers, shards within each probe's cycle loop).
    if (args.has("shards"))
        spec.base.shards =
            static_cast<int>(args.getInt("shards", 1));

    // Fail a bad --obs-dir up front with the offending path, not as
    // per-cell warnings after hours of searching.
    if (!spec.obsDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec.obsDir, ec);
        if (ec)
            AFCSIM_CONFIG_ERROR("cannot create --obs-dir '",
                                spec.obsDir, "': ", ec.message());
    }

    std::unique_ptr<Journal> journal;
    if (args.has("resume")) {
        if (args.get("resume").empty())
            AFCSIM_CONFIG_ERROR("--resume needs a directory");
        journal = std::make_unique<Journal>(args.get("resume"));
        journal->open("afcsim-search", spec);
    }

    int threads = static_cast<int>(args.getInt("threads", 1));
    auto progress = args.has("quiet") ? SearchProgressFn{}
                                      : stderrSearchProgress();
    std::vector<SearchResult> results =
        runSearchGrid(spec, threads, progress, journal.get());

    printSummary(spec, results);

    if (args.has("json")) {
        std::string path = args.get("json");
        int indent = static_cast<int>(args.getInt("indent", 2));
        JsonValue doc = searchResultsToJson(spec, results);
        writeFile(path, doc.dump(indent) + "\n");
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    if (args.has("csv")) {
        writeFile(args.get("csv"), searchResultsToCsv(results));
        std::fprintf(stderr, "wrote %s\n", args.get("csv").c_str());
    }

    if (args.has("require-converged")) {
        for (const auto &r : results) {
            if (r.error.empty() && r.converged)
                continue;
            AFCSIM_CONFIG_ERROR(
                "search for '", r.point.group, "' ",
                afcsim::toString(r.point.fc),
                r.error.empty()
                    ? std::string(
                          " did not converge within the probe budget")
                    : " failed: " + r.error);
        }
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // User mistakes and recoverable failures surface as a clear
    // message and a nonzero exit, never an abort or a stack trace.
    try {
        return runMain(argc, argv);
    } catch (const afcsim::Error &e) {
        std::fprintf(stderr, "afcsim-search: error: %s\n", e.what());
        return 1;
    }
}
