/**
 * @file
 * afcsim-trace: inspect and filter Chrome trace-event files emitted
 * by the observability subsystem (src/obs). The same files load in
 * Perfetto / chrome://tracing; this tool covers the quick-look and
 * scripting cases without a browser.
 *
 * Usage:
 *   afcsim-trace summary TRACE.json
 *       Event counts by name, per-router backpressured-mode
 *       residency (from the B/E mode spans), and switch totals.
 *   afcsim-trace filter TRACE.json [node=N] [cat=CAT] [name=NAME]
 *                [from=CYCLE] [to=CYCLE]
 *       Re-emit the document keeping only matching events (metadata
 *       records are always kept so the output still loads in
 *       Perfetto). Writes to stdout.
 *   afcsim-trace diff A.json B.json
 *       Compare the AFC mode-switch timelines (cat=switch instant
 *       events) of two runs: first divergence cycle and per-router
 *       switch-count deltas.
 *
 * Exit status: 0 on success, 1 on bad input, 2 on usage errors.
 * `diff` exits 0 when the switch timelines are identical and 3 when
 * they diverge, so scripts can branch on it like cmp(1).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

using afcsim::JsonValue;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: afcsim-trace summary TRACE.json\n"
        "       afcsim-trace filter TRACE.json [node=N] [cat=CAT]\n"
        "                    [name=NAME] [from=CYCLE] [to=CYCLE]\n"
        "       afcsim-trace diff A.json B.json\n");
    return 2;
}

/** key=value operands after the file argument. */
struct Filter
{
    long node = -1;
    std::string cat;
    std::string name;
    long from = -1;
    long to = -1;
};

bool
parseFilter(int argc, char **argv, int start, Filter &f)
{
    for (int i = start; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr,
                         "afcsim-trace: bad operand '%s' "
                         "(want key=value)\n",
                         arg.c_str());
            return false;
        }
        std::string key = arg.substr(0, eq);
        std::string value = arg.substr(eq + 1);
        if (key == "node") {
            f.node = std::strtol(value.c_str(), nullptr, 10);
        } else if (key == "cat") {
            f.cat = value;
        } else if (key == "name") {
            f.name = value;
        } else if (key == "from") {
            f.from = std::strtol(value.c_str(), nullptr, 10);
        } else if (key == "to") {
            f.to = std::strtol(value.c_str(), nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "afcsim-trace: unknown filter key '%s'\n",
                         key.c_str());
            return false;
        }
    }
    return true;
}

bool
loadTrace(const std::string &path, JsonValue &doc)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "afcsim-trace: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    doc = JsonValue::parse(ss.str(), &error);
    if (!error.empty()) {
        std::fprintf(stderr, "afcsim-trace: %s: parse error: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    if (!doc.isObject() || !doc.has("traceEvents") ||
        !doc.at("traceEvents").isArray()) {
        std::fprintf(stderr,
                     "afcsim-trace: %s: not a Chrome trace-event "
                     "document (no traceEvents array)\n",
                     path.c_str());
        return false;
    }
    return true;
}

std::string
strField(const JsonValue &e, const char *key)
{
    const JsonValue *v = e.find(key);
    return v != nullptr && v->isString() ? v->asString() : std::string();
}

long
intField(const JsonValue &e, const char *key, long fallback)
{
    const JsonValue *v = e.find(key);
    return v != nullptr && v->isNumber() ? v->asInt() : fallback;
}

int
runSummary(const JsonValue &doc)
{
    const JsonValue &events = doc.at("traceEvents");
    std::map<std::string, std::uint64_t> byName;
    std::map<std::string, std::uint64_t> byCat;
    // Mode-span replay state per tid.
    struct ModeState
    {
        std::string open;   ///< "BP"/"BPL" of the unclosed B, if any
        long openTs = 0;
        long bpCycles = 0;
        long totalCycles = 0;
    };
    std::map<long, ModeState> modes;

    long last_ts = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.at(i);
        std::string ph = strField(e, "ph");
        long ts = intField(e, "ts", 0);
        if (ts > last_ts)
            last_ts = ts;
        if (ph == "M" || ph == "C")
            continue;
        long tid = intField(e, "tid", -1);
        if (ph == "B") {
            ModeState &m = modes[tid];
            m.open = strField(e, "name");
            m.openTs = ts;
            continue;
        }
        if (ph == "E") {
            ModeState &m = modes[tid];
            if (!m.open.empty()) {
                long span = ts - m.openTs;
                m.totalCycles += span;
                if (m.open == "BP")
                    m.bpCycles += span;
                m.open.clear();
            }
            continue;
        }
        // Instant events: flit lifecycle and mode switches.
        ++byName[strField(e, "name")];
        ++byCat[strField(e, "cat")];
    }

    std::printf("events by name:\n");
    for (const auto &[name, count] : byName)
        std::printf("  %-18s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
    std::printf("events by category:\n");
    for (const auto &[cat, count] : byCat)
        std::printf("  %-18s %10llu\n", cat.c_str(),
                    static_cast<unsigned long long>(count));

    if (!modes.empty()) {
        std::printf("mode residency (BP fraction of traced span):\n");
        double sum = 0.0;
        std::uint64_t counted = 0;
        for (const auto &[tid, m] : modes) {
            double frac = m.totalCycles > 0
                ? static_cast<double>(m.bpCycles) / m.totalCycles
                : 0.0;
            std::printf("  router %-4ld %6.1f%%  (%ld / %ld cycles)\n",
                        tid, 100.0 * frac, m.bpCycles, m.totalCycles);
            sum += frac;
            ++counted;
        }
        if (counted > 0)
            std::printf("  mean       %6.1f%%\n",
                        100.0 * sum / static_cast<double>(counted));
    }
    std::printf("last event at cycle %ld\n", last_ts);
    return 0;
}

bool
matches(const JsonValue &e, const Filter &f)
{
    if (f.node >= 0 && intField(e, "tid", -1) != f.node)
        return false;
    if (!f.cat.empty() && strField(e, "cat") != f.cat)
        return false;
    if (!f.name.empty() && strField(e, "name") != f.name)
        return false;
    long ts = intField(e, "ts", 0);
    if (f.from >= 0 && ts < f.from)
        return false;
    if (f.to >= 0 && ts > f.to)
        return false;
    return true;
}

int
runFilter(const JsonValue &doc, const Filter &f)
{
    const JsonValue &events = doc.at("traceEvents");
    JsonValue kept = JsonValue::array();
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.at(i);
        // Keep metadata so the result still renders named tracks.
        if (strField(e, "ph") == "M" || matches(e, f))
            kept.push(e);
    }
    JsonValue out = JsonValue::object();
    out.set("traceEvents", std::move(kept));
    for (const auto &[key, value] : doc.members()) {
        if (key != "traceEvents")
            out.set(key, value);
    }
    std::printf("%s\n", out.dump(0).c_str());
    return 0;
}

/** One mode-switch instant: when, where, which transition. */
struct SwitchEvent
{
    long ts = 0;
    long tid = 0;
    std::string name;

    bool
    operator==(const SwitchEvent &o) const
    {
        return ts == o.ts && tid == o.tid && name == o.name;
    }
};

/** Extract cat=="switch" instant events in document order. */
std::vector<SwitchEvent>
switchTimeline(const JsonValue &doc)
{
    std::vector<SwitchEvent> out;
    const JsonValue &events = doc.at("traceEvents");
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.at(i);
        if (strField(e, "cat") != "switch")
            continue;
        SwitchEvent s;
        s.ts = intField(e, "ts", 0);
        s.tid = intField(e, "tid", -1);
        s.name = strField(e, "name");
        out.push_back(std::move(s));
    }
    return out;
}

int
runDiff(const JsonValue &a, const JsonValue &b,
        const std::string &name_a, const std::string &name_b)
{
    std::vector<SwitchEvent> ta = switchTimeline(a);
    std::vector<SwitchEvent> tb = switchTimeline(b);

    std::printf("switch events: %zu vs %zu\n", ta.size(), tb.size());

    // Per-router switch-count delta.
    std::map<long, std::pair<long, long>> perRouter;
    for (const auto &s : ta)
        ++perRouter[s.tid].first;
    for (const auto &s : tb)
        ++perRouter[s.tid].second;
    bool countsDiffer = false;
    for (const auto &[tid, counts] : perRouter) {
        if (counts.first != counts.second) {
            if (!countsDiffer)
                std::printf("per-router switch-count deltas:\n");
            countsDiffer = true;
            std::printf("  router %-4ld %6ld vs %-6ld (%+ld)\n", tid,
                        counts.first, counts.second,
                        counts.second - counts.first);
        }
    }
    if (!countsDiffer)
        std::printf("per-router switch counts match "
                    "(%zu routers switched)\n",
                    perRouter.size());

    // First divergence in timeline order.
    std::size_t n = std::min(ta.size(), tb.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (ta[i] == tb[i])
            continue;
        std::printf("first divergence at event %zu, cycle %ld:\n"
                    "  %s: cycle %ld router %ld %s\n"
                    "  %s: cycle %ld router %ld %s\n",
                    i, std::min(ta[i].ts, tb[i].ts), name_a.c_str(),
                    ta[i].ts, ta[i].tid, ta[i].name.c_str(),
                    name_b.c_str(), tb[i].ts, tb[i].tid,
                    tb[i].name.c_str());
        return 3;
    }
    if (ta.size() != tb.size()) {
        const auto &longer = ta.size() > tb.size() ? ta : tb;
        std::printf("first divergence at event %zu, cycle %ld: %s "
                    "has %zu extra event(s)\n",
                    n, longer[n].ts,
                    (ta.size() > tb.size() ? name_a : name_b).c_str(),
                    longer.size() - n);
        return 3;
    }
    std::printf("switch timelines identical (%zu events)\n",
                ta.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];
    if (cmd != "summary" && cmd != "filter" && cmd != "diff")
        return usage();

    if (cmd == "diff") {
        if (argc != 4)
            return usage();
        JsonValue a;
        JsonValue b;
        if (!loadTrace(argv[2], a) || !loadTrace(argv[3], b))
            return 1;
        return runDiff(a, b, argv[2], argv[3]);
    }

    JsonValue doc;
    if (!loadTrace(argv[2], doc))
        return 1;

    if (cmd == "summary") {
        if (argc != 3)
            return usage();
        return runSummary(doc);
    }
    Filter f;
    if (!parseFilter(argc, argv, 3, f))
        return 2;
    return runFilter(doc, f);
}
