/**
 * @file
 * Calibration probe (not installed): prints absolute energy
 * components per configuration for the low- and high-load operating
 * points, to tune EnergyConfig coefficients against the paper's
 * relative results.
 */

#include <cstdio>

#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;

static void
probe(const char *label, const WorkloadProfile &base)
{
    WorkloadProfile w = base;
    w.warmupTransactions /= 4;
    w.measureTransactions /= 4;
    NetworkConfig cfg;
    cfg.seed = 7;
    std::printf("\n== %s (%s) ==\n", label, w.name.c_str());
    ClosedLoopResult bp =
        runClosedLoop(cfg, FlowControl::Backpressured, w);
    std::printf("%-10s %10s %10s %10s %10s %8s %8s %8s\n", "cfg",
                "total", "buffer", "link", "rest", "rel", "inj",
                "runtime");
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc, FlowControl::AfcAlwaysBackpressured,
          FlowControl::BackpressuredIdealBypass}) {
        ClosedLoopResult r = fc == FlowControl::Backpressured
            ? bp : runClosedLoop(cfg, fc, w);
        std::printf("%-10s %10.0f %10.0f %10.0f %10.0f %8.3f %8.3f "
                    "%8llu\n",
                    toString(fc).c_str(), r.energy.total(),
                    r.energy.bufferEnergy(), r.energy.linkEnergy(),
                    r.energy.restEnergy(),
                    r.energy.total() / bp.energy.total(),
                    r.injectionRate,
                    (unsigned long long)r.runtime);
    }
}

int
main()
{
    probe("low load", barnesWorkload());
    probe("low load", waterWorkload());
    probe("mid load", oceanWorkload());
    probe("high load", apacheWorkload());
    probe("high load", oltpWorkload());
    probe("high load", specjbbWorkload());
    return 0;
}
