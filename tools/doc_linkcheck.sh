#!/bin/sh
# Documentation cross-reference checker, run as the `docs_linkcheck`
# ctest. Verifies that the documentation stays wired to the tree it
# describes:
#
#   1. Every relative markdown link target in docs/*.md, README.md,
#      DESIGN.md, EXPERIMENTS.md, and CHANGES.md resolves to an
#      existing file (anchors/#fragments are stripped; http(s) and
#      mailto links are skipped).
#   2. Every backticked repository path (`src/...`, `tests/...`,
#      `tools/...`, `bench/...`, `docs/...`, `examples/...`) quoted
#      in those files names a real file or directory, so inventory
#      rows and prose never point at renamed-away modules.
#   3. Every DESIGN.md §2 inventory row (S1..Sn) appears in the
#      docs/ARCHITECTURE.md subsystem map, and the map cites no row
#      that does not exist.
#
# Usage: doc_linkcheck.sh <repo-root>
set -u

root=${1:?usage: doc_linkcheck.sh <repo-root>}
cd "$root" || exit 2

fail=0
err()
{
    echo "doc_linkcheck: $1" >&2
    fail=1
}

docs="README.md DESIGN.md EXPERIMENTS.md CHANGES.md"
for f in docs/*.md; do
    docs="$docs $f"
done

# Sections 1 + 2 run in one subshell pipeline; collect its findings.
out=$( {
    for doc in $docs; do
        [ -f "$doc" ] || { echo "MISSING $doc"; continue; }
        dir=$(dirname "$doc")

        # 1. markdown link targets: every ](...) group.
        grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' |
        while IFS= read -r target; do
            case $target in
                http://*|https://*|mailto:*|\#*) continue ;;
            esac
            path=${target%%#*}
            [ -n "$path" ] || continue
            if ! [ -e "$dir/$path" ] && ! [ -e "$path" ]; then
                echo "BROKENLINK $doc -> $target"
            fi
        done

        # 2. backticked repository paths. A path may name a build
        # target rather than its source file (`bench/bench_scaling`,
        # `tools/afcsim-exp`), so a miss retries with source
        # suffixes, and with dashes mapped to underscores for the
        # tools/ binaries.
        grep -o '`[^`]*`' "$doc" | sed 's/^`//; s/`$//' |
        grep -E '^(src|tests|tools|bench|docs|examples)/[A-Za-z0-9._/-]+$' |
        while IFS= read -r path; do
            alt=$(printf '%s' "$path" | tr - _)
            ok=0
            for cand in "$path" "$path.cc" "$path.cpp" \
                        "$alt" "$alt.cc" "$alt.cpp"; do
                [ -e "$cand" ] && { ok=1; break; }
            done
            [ "$ok" -eq 1 ] || echo "BADPATH $doc -> \`$path\`"
        done
    done
} | sort -u )

if [ -n "$out" ]; then
    printf '%s\n' "$out" | while IFS= read -r line; do
        echo "doc_linkcheck: $line" >&2
    done
    fail=1
fi

# 3. DESIGN.md inventory rows vs. the ARCHITECTURE.md subsystem map.
design_rows=$(grep -o '^| S[0-9][0-9]*' DESIGN.md | sed 's/^| //' | sort -u)
[ -n "$design_rows" ] || err "DESIGN.md: no inventory rows (| S<n> |) found"

map_rows=$(sed -n '/^## Subsystem map/,$p' docs/ARCHITECTURE.md |
           grep -o 'S[0-9][0-9]*' | sort -u)
[ -n "$map_rows" ] || err "docs/ARCHITECTURE.md: no subsystem-map rows found"

for row in $design_rows; do
    if ! printf '%s\n' "$map_rows" | grep -qx "$row"; then
        err "DESIGN.md row $row is missing from the docs/ARCHITECTURE.md subsystem map"
    fi
done
for row in $map_rows; do
    if ! printf '%s\n' "$design_rows" | grep -qx "$row"; then
        err "docs/ARCHITECTURE.md subsystem map cites $row, which is not a DESIGN.md inventory row"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "doc_linkcheck: FAIL" >&2
    exit 1
fi
echo "doc_linkcheck: all cross-references resolve"
exit 0
