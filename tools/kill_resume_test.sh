#!/bin/sh
# Kill-and-resume integration test for the crash-safe sweep machinery
# (src/exp/journal): run a journaled grid, SIGKILL it mid-flight,
# resume it, and require the completed artifacts to be byte-identical
# to an uninterrupted, journal-free run of the same spec. A second
# resume over the finished journal must load every point from its
# done marker and emit the same bytes once more.
#
# Usage: kill_resume_test.sh <afcsim-exp> <workdir>
set -e

EXP="$1"
DIR="$2"
[ -n "$EXP" ] && [ -n "$DIR" ] || {
    echo "usage: $0 <afcsim-exp> <workdir>" >&2
    exit 2
}
rm -rf "$DIR"
mkdir -p "$DIR"

ARGS="--experiment openloop_sweep --rates 0.15,0.3,0.42 \
      --configs bp,afc --mesh 6 --warmup 1500 --measure 3000 \
      --threads 2 --quiet"

# Reference: the same grid, uninterrupted and journal-free.
$EXP $ARGS --json "$DIR/ref.json" --csv "$DIR/ref.csv"

# Journaled run, killed once the first done marker lands (if the
# grid finishes before we get to the kill, that is fine too — the
# resume below then simply loads everything from the journal).
$EXP $ARGS --resume "$DIR/journal" --ckpt-interval 500 \
    --json "$DIR/run.json" --csv "$DIR/run.csv" &
pid=$!
i=0
while [ $i -lt 600 ]; do
    if ls "$DIR/journal"/point_*.res >/dev/null 2>&1; then
        break
    fi
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
rm -f "$DIR/run.json" "$DIR/run.csv"

# Resume: completed points load from done markers, the in-flight one
# restarts from its periodic checkpoint, and the emitted documents
# must match the uninterrupted reference byte-for-byte.
$EXP $ARGS --resume "$DIR/journal" --ckpt-interval 500 \
    --json "$DIR/res.json" --csv "$DIR/res.csv"
cmp "$DIR/res.json" "$DIR/ref.json"
cmp "$DIR/res.csv" "$DIR/ref.csv"

# Second resume over the finished journal: everything loads from done
# markers (the checkpoint interval is runtime policy, not part of the
# journaled grid identity, so it may differ between invocations).
$EXP $ARGS --resume "$DIR/journal" \
    --json "$DIR/res2.json" --csv "$DIR/res2.csv"
cmp "$DIR/res2.json" "$DIR/ref.json"
cmp "$DIR/res2.csv" "$DIR/ref.csv"

echo "kill-and-resume: byte-identical to the uninterrupted sweep"
