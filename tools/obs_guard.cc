/**
 * @file
 * afcsim-obs-guard: throughput-regression guard for the observability
 * subsystem. It replays the bench_router_micro AFC hot loop (a 3x3
 * AFC mesh under uniform open-loop traffic at 0.3 flits/node/cycle)
 * with observability disabled, takes the best of several repetitions,
 * and either records the result as a baseline or checks the current
 * build against a recorded baseline.
 *
 * The guarded quantity is the *calibrated ratio* sim-cycles/sec
 * divided by the throughput of a fixed pure-CPU reference kernel
 * measured in the same process, interleaved rep by rep. Host speed
 * changes (frequency scaling, an overcommitted container) move both
 * numbers together and cancel in the ratio, so a tight tolerance
 * stays meaningful on noisy machines where raw wall-clock — or even
 * CPU-time — throughput drifts by 5-20 % between invocations.
 *
 * Usage (key=value options):
 *   afcsim-obs-guard mode=record [file=bench_router_micro_obs.json]
 *       Measure and write the baseline file (schema matches the
 *       ThroughputProfiler export, plus a "guard" block).
 *   afcsim-obs-guard mode=check [file=...] [tolerance=0.02]
 *       Re-measure and fail (exit 1) if the calibrated ratio fell
 *       more than `tolerance` below the baseline. Also measures the
 *       obs-on configuration and reports its overhead
 *       (informational).
 *
 * Extra knobs: cycles=N (per rep, default 60000), reps=N (default 3).
 */

#include <algorithm>
#include <ctime>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.hh"
#include "common/json.hh"
#include "network/network.hh"
#include "obs/profile.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

using namespace afcsim;

namespace
{

/**
 * Process CPU time: unlike wall clock, it does not count cycles the
 * scheduler gave to other processes, so best-of-N measurements stay
 * comparable on a loaded or overcommitted host. (The loop is
 * single-threaded, so CPU time == time actually spent simulating.)
 */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
}

/** One timed run of the bench_router_micro AFC loop. */
double
measureCyclesPerSec(const NetworkConfig &cfg, Cycle cycles)
{
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.3, 0.35);
    double t0 = cpuSeconds();
    for (Cycle c = 0; c < cycles; ++c) {
        inj.tick(net.now());
        net.step();
    }
    double sec = cpuSeconds() - t0;
    return sec > 0.0 ? static_cast<double>(cycles) / sec : 0.0;
}

/**
 * Reference kernel: a fixed amount of pure-register work (xorshift64
 * over `iters` steps), returning steps/sec of CPU time. Cache- and
 * memory-free, so its speed tracks the core's effective frequency.
 */
double
calibrationStepsPerSec(std::uint64_t iters)
{
    double t0 = cpuSeconds();
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::uint64_t i = 0; i < iters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    double sec = cpuSeconds() - t0;
    // Defeat dead-code elimination of the kernel.
    volatile std::uint64_t sink = x;
    (void)sink;
    return sec > 0.0 ? static_cast<double>(iters) / sec : 0.0;
}

/**
 * Best-of-`reps` sim throughput and calibration throughput,
 * interleaved so both sample the same machine conditions. Returns
 * {sim cycles/sec, calibration steps/sec}.
 */
struct Measurement
{
    double simCps = 0.0;
    double calibSps = 0.0;
};

Measurement
bestOf(const NetworkConfig &cfg, Cycle cycles, int reps)
{
    constexpr std::uint64_t kCalibIters = 20'000'000;
    Measurement m;
    for (int i = 0; i < reps; ++i) {
        m.simCps = std::max(m.simCps, measureCyclesPerSec(cfg, cycles));
        m.calibSps =
            std::max(m.calibSps, calibrationStepsPerSec(kCalibIters));
    }
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    std::string mode = opt.get("mode", "check");
    std::string file = opt.get("file", "bench_router_micro_obs.json");
    Cycle cycles = static_cast<Cycle>(opt.getInt("cycles", 60000));
    int reps = static_cast<int>(opt.getInt("reps", 3));
    double tolerance = opt.getDouble("tolerance", 0.02);

    NetworkConfig off; // observability disabled: the guarded path
    Measurement offm = bestOf(off, cycles, reps);
    double off_cps = offm.simCps;
    double off_ratio =
        offm.calibSps > 0.0 ? offm.simCps / offm.calibSps : 0.0;

    NetworkConfig on = off;
    on.obs.trace = true;
    on.obs.sampleInterval = 64;
    double on_cps = bestOf(on, cycles, reps).simCps;

    double overhead =
        off_cps > 0.0 ? 1.0 - on_cps / off_cps : 0.0;
    std::printf("obs off: %.0f cycles/s, calibrated ratio %.5g "
                "(best of %d x %llu cycles)\n",
                off_cps, off_ratio, reps,
                static_cast<unsigned long long>(cycles));
    std::printf("obs on:  %.0f cycles/s (%.1f%% overhead)\n", on_cps,
                100.0 * overhead);

    if (mode == "record") {
        obs::ThroughputProfiler prof("bench_router_micro");
        double wall_ms =
            off_cps > 0.0 ? 1000.0 * cycles / off_cps : 0.0;
        prof.add("afc_cycle_obs_off", wall_ms, cycles, 0);
        JsonValue doc = prof.toJson();
        JsonValue guard = JsonValue::object();
        guard.set("cycles_per_sec", off_cps);
        guard.set("calib_steps_per_sec", offm.calibSps);
        guard.set("calibrated_ratio", off_ratio);
        guard.set("obs_on_cycles_per_sec", on_cps);
        guard.set("reps", reps);
        guard.set("cycles", static_cast<std::int64_t>(cycles));
        doc.set("guard", std::move(guard));
        std::ofstream out(file);
        if (!out) {
            std::fprintf(stderr,
                         "afcsim-obs-guard: cannot write '%s'\n",
                         file.c_str());
            return 1;
        }
        out << doc.dump(2) << '\n';
        std::printf("recorded baseline -> %s\n", file.c_str());
        return 0;
    }

    if (mode != "check") {
        std::fprintf(stderr,
                     "afcsim-obs-guard: unknown mode '%s' "
                     "(want record or check)\n",
                     mode.c_str());
        return 2;
    }

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr,
                     "afcsim-obs-guard: no baseline '%s' "
                     "(run mode=record first)\n",
                     file.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    JsonValue doc = JsonValue::parse(ss.str(), &error);
    if (!error.empty() || !doc.has("guard")) {
        std::fprintf(stderr,
                     "afcsim-obs-guard: bad baseline '%s': %s\n",
                     file.c_str(),
                     error.empty() ? "missing guard block"
                                   : error.c_str());
        return 1;
    }
    double baseline =
        doc.at("guard").at("calibrated_ratio").asDouble();
    double floor = baseline * (1.0 - tolerance);
    std::printf("baseline ratio: %.5g, floor: %.5g (-%.0f%%)\n",
                baseline, floor, 100.0 * tolerance);
    if (off_ratio < floor) {
        std::fprintf(stderr,
                     "afcsim-obs-guard: FAIL: calibrated ratio %.5g "
                     "is below the %.5g floor (baseline %.5g, "
                     "tolerance %.0f%%)\n",
                     off_ratio, floor, baseline, 100.0 * tolerance);
        return 1;
    }
    std::printf("PASS: tracing-off throughput within %.0f%% of "
                "baseline (calibrated)\n",
                100.0 * tolerance);
    return 0;
}
