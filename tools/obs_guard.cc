/**
 * @file
 * afcsim-obs-guard: throughput-regression guard ("perf ratchet") for
 * the simulator's hot paths. It measures named kernel points and
 * either records them as a baseline or checks the current build
 * against a recorded baseline:
 *
 *  - router_micro: the bench_router_micro AFC hot loop (3x3 AFC mesh
 *    under uniform open-loop traffic at 0.3 flits/node/cycle),
 *    observability disabled.
 *  - closedloop_8x8: the 8x8 closed-loop memory-system kernel (ocean
 *    workload), the workload the idle-router activity scheduler
 *    targets — bursty traffic with large quiescent regions.
 *  - closedloop_32x32: the 32x32 closed-loop kernel run at shards=1
 *    and shards=4, guarding the sharded cycle kernel's multi-thread
 *    speedup. Unlike the ratio points this one is wall-clock (CPU
 *    time sums across worker threads and would hide the win) and
 *    self-calibrating (shards=1 and shards=4 sample the same host
 *    back to back, so the speedup cancels machine drift). The >= 2x
 *    floor is enforced only when the host exposes at least four
 *    hardware threads; on smaller hosts the point is recorded but
 *    reported as informational.
 *
 * The guarded quantity is the *calibrated ratio* sim-cycles/sec
 * divided by the throughput of a fixed pure-CPU reference kernel
 * measured in the same process, interleaved rep by rep. Host speed
 * changes (frequency scaling, an overcommitted container) move both
 * numbers together and cancel in the ratio, so a tight tolerance
 * stays meaningful on noisy machines where raw wall-clock — or even
 * CPU-time — throughput drifts by 5-20 % between invocations.
 *
 * Usage (key=value options):
 *   afcsim-obs-guard mode=record [file=bench_router_micro_obs.json]
 *       Measure and write the baseline file (schema matches the
 *       ThroughputProfiler export, plus a "guard" block and a
 *       per-point "points" block).
 *   afcsim-obs-guard mode=check [file=...] [tolerance=0.02]
 *       Re-measure and fail (exit 1) if any point's calibrated ratio
 *       fell more than `tolerance` below its baseline. Also measures
 *       the obs-on configuration and the idle_skip=off scheduler
 *       path and reports their overhead (informational).
 *
 * Extra knobs: cycles=N (router_micro cycles per rep, default 60000),
 * reps=N (default 3), cl_div=N (closed-loop workload divisor,
 * default 4), cl_tolerance=F (closed-loop point tolerance, default
 * 0.06 — the bursty memory-system kernel is cache-sensitive and
 * noisier than the steady micro loop, so its ratchet is looser),
 * cl32_div=N (32x32 workload divisor, default 4), cl32_floor=F
 * (minimum shards=4 wall-clock speedup, default 2.0), cl32_shards=N
 * (shard count for the speedup point, default 4), attempts=N
 * (check-mode re-measurements before a miss counts as a regression,
 * default 3).
 */

#include <algorithm>
#include <ctime>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>

#include "common/config.hh"
#include "common/json.hh"
#include "network/network.hh"
#include "obs/profile.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

using namespace afcsim;

namespace
{

/**
 * Process CPU time: unlike wall clock, it does not count cycles the
 * scheduler gave to other processes, so best-of-N measurements stay
 * comparable on a loaded or overcommitted host. (The loop is
 * single-threaded, so CPU time == time actually spent simulating.)
 */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
}

/** One timed run of the bench_router_micro AFC loop. */
double
measureRouterMicroCps(const NetworkConfig &cfg, Cycle cycles)
{
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.3, 0.35);
    double t0 = cpuSeconds();
    for (Cycle c = 0; c < cycles; ++c) {
        inj.tick(net.now());
        net.step();
    }
    double sec = cpuSeconds() - t0;
    return sec > 0.0 ? static_cast<double>(cycles) / sec : 0.0;
}

/**
 * Wall clock, for the multi-threaded point only: with N shards the
 * process burns CPU time on N cores at once (including worker
 * spin-waits), so CLOCK_PROCESS_CPUTIME_ID would report a sharded
 * run as *slower*. Wall clock is what the speedup actually buys.
 */
double
wallSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
}

/** One timed run of the 8x8 closed-loop memory-system kernel. */
double
measureClosedLoopCps(const NetworkConfig &base, long cl_div)
{
    NetworkConfig cfg = base;
    cfg.width = 8;
    cfg.height = 8;
    cfg.seed = 7;
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= cl_div;
    w.measureTransactions /= cl_div;
    ClosedLoopSystem sys(cfg, FlowControl::Afc, w);
    double t0 = cpuSeconds();
    sys.run();
    double sec = cpuSeconds() - t0;
    double cycles = static_cast<double>(sys.network().now());
    return sec > 0.0 ? cycles / sec : 0.0;
}

/** One wall-clock-timed run of the 32x32 closed-loop kernel. */
double
measureClosedLoop32WallCps(const NetworkConfig &base, int shards,
                           long cl32_div)
{
    NetworkConfig cfg = base;
    cfg.width = 32;
    cfg.height = 32;
    cfg.seed = 7;
    cfg.shards = shards;
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= cl32_div;
    w.measureTransactions /= cl32_div;
    ClosedLoopSystem sys(cfg, FlowControl::Afc, w);
    double t0 = wallSeconds();
    sys.run();
    double sec = wallSeconds() - t0;
    double cycles = static_cast<double>(sys.network().now());
    return sec > 0.0 ? cycles / sec : 0.0;
}

/**
 * Reference kernel: a fixed amount of pure-register work (xorshift64
 * over `iters` steps), returning steps/sec of CPU time. Cache- and
 * memory-free, so its speed tracks the core's effective frequency.
 */
double
calibrationStepsPerSec(std::uint64_t iters)
{
    double t0 = cpuSeconds();
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::uint64_t i = 0; i < iters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    double sec = cpuSeconds() - t0;
    // Defeat dead-code elimination of the kernel.
    volatile std::uint64_t sink = x;
    (void)sink;
    return sec > 0.0 ? static_cast<double>(iters) / sec : 0.0;
}

/**
 * Best-of-`reps` sim throughput and calibration throughput,
 * interleaved so both sample the same machine conditions.
 */
struct Measurement
{
    double simCps = 0.0;
    double calibSps = 0.0;

    double
    ratio() const
    {
        return calibSps > 0.0 ? simCps / calibSps : 0.0;
    }
};

Measurement
bestOf(const std::function<double()> &run, int reps)
{
    constexpr std::uint64_t kCalibIters = 20'000'000;
    Measurement m;
    for (int i = 0; i < reps; ++i) {
        m.simCps = std::max(m.simCps, run());
        m.calibSps =
            std::max(m.calibSps, calibrationStepsPerSec(kCalibIters));
    }
    return m;
}

JsonValue
pointJson(const Measurement &m)
{
    JsonValue p = JsonValue::object();
    p.set("cycles_per_sec", m.simCps);
    p.set("calib_steps_per_sec", m.calibSps);
    p.set("calibrated_ratio", m.ratio());
    return p;
}

/**
 * Check one point against its baseline ratio. A first miss is
 * re-measured (up to `attempts` total) before declaring a
 * regression: co-tenant load bursts slow a whole measurement window
 * at once and no best-of-reps can hide them, but they pass; a real
 * code regression fails every attempt.
 */
bool
checkPoint(const char *name, double measured, double baseline,
           double tolerance, int attempts,
           const std::function<Measurement()> &remeasure)
{
    double floor = baseline * (1.0 - tolerance);
    for (int a = 0; a < attempts; ++a) {
        std::printf("%s: baseline ratio %.5g, floor %.5g, measured "
                    "%.5g%s\n",
                    name, baseline, floor, measured,
                    a ? " (retry)" : "");
        if (measured >= floor)
            return true;
        if (a + 1 < attempts)
            measured = remeasure().ratio();
    }
    std::fprintf(stderr,
                 "afcsim-obs-guard: FAIL: %s calibrated ratio %.5g "
                 "is below the %.5g floor (baseline %.5g, tolerance "
                 "%.0f%%, %d attempts)\n",
                 name, measured, floor, baseline, 100.0 * tolerance,
                 attempts);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    std::string mode = opt.get("mode", "check");
    std::string file = opt.get("file", "bench_router_micro_obs.json");
    Cycle cycles = static_cast<Cycle>(opt.getInt("cycles", 60000));
    int reps = static_cast<int>(opt.getInt("reps", 3));
    long cl_div = opt.getInt("cl_div", 4);
    double tolerance = opt.getDouble("tolerance", 0.02);
    double cl_tolerance = opt.getDouble("cl_tolerance", 0.06);
    long cl32_div = opt.getInt("cl32_div", 4);
    int cl32_shards = static_cast<int>(opt.getInt("cl32_shards", 4));
    double cl32_floor = opt.getDouble("cl32_floor", 2.0);
    unsigned hw_threads = std::thread::hardware_concurrency();

    NetworkConfig off; // observability disabled: the guarded path
    Measurement micro = bestOf(
        [&] { return measureRouterMicroCps(off, cycles); }, reps);
    Measurement closed = bestOf(
        [&] { return measureClosedLoopCps(off, cl_div); }, reps);

    // Informational companions: observability cost on the micro
    // loop, and the activity scheduler's gain on the closed loop.
    NetworkConfig on = off;
    on.obs.trace = true;
    on.obs.sampleInterval = 64;
    double on_cps = bestOf(
        [&] { return measureRouterMicroCps(on, cycles); }, reps).simCps;
    NetworkConfig noskip = off;
    noskip.idleSkip = false;
    double noskip_cps = bestOf(
        [&] { return measureClosedLoopCps(noskip, cl_div); }, reps).simCps;

    double overhead =
        micro.simCps > 0.0 ? 1.0 - on_cps / micro.simCps : 0.0;
    double skip_gain =
        noskip_cps > 0.0 ? closed.simCps / noskip_cps : 0.0;

    // Multi-thread point: best-of-reps wall-clock throughput at one
    // shard and at cl32_shards, interleaved rep by rep so both see
    // the same machine conditions; the guarded quantity is the ratio.
    double wall1 = 0.0;
    double wallN = 0.0;
    auto measure32 = [&] {
        double w1 = 0.0;
        double wn = 0.0;
        for (int i = 0; i < reps; ++i) {
            w1 = std::max(w1,
                          measureClosedLoop32WallCps(off, 1, cl32_div));
            wn = std::max(wn, measureClosedLoop32WallCps(
                                  off, cl32_shards, cl32_div));
        }
        wall1 = w1;
        wallN = wn;
        return w1 > 0.0 ? wn / w1 : 0.0;
    };
    double shard_speedup = measure32();
    std::printf("router_micro:   %.0f cycles/s, calibrated ratio %.5g "
                "(best of %d x %llu cycles)\n",
                micro.simCps, micro.ratio(), reps,
                static_cast<unsigned long long>(cycles));
    std::printf("  obs on:       %.0f cycles/s (%.1f%% overhead)\n",
                on_cps, 100.0 * overhead);
    std::printf("closedloop_8x8: %.0f cycles/s, calibrated ratio %.5g "
                "(best of %d, ocean/%ld)\n",
                closed.simCps, closed.ratio(), reps, cl_div);
    std::printf("  idle_skip=off: %.0f cycles/s (skip speedup "
                "%.2fx)\n",
                noskip_cps, skip_gain);
    std::printf("closedloop_32x32: %.0f cycles/s wall at shards=1, "
                "%.0f at shards=%d (speedup %.2fx, %u hw threads, "
                "ocean/%ld)\n",
                wall1, wallN, cl32_shards, shard_speedup, hw_threads,
                cl32_div);

    if (mode == "record") {
        obs::ThroughputProfiler prof("bench_router_micro");
        double wall_ms =
            micro.simCps > 0.0 ? 1000.0 * cycles / micro.simCps : 0.0;
        prof.add("afc_cycle_obs_off", wall_ms, cycles, 0);
        JsonValue doc = prof.toJson();
        // Legacy single-point block (older checkers read only this).
        JsonValue guard = JsonValue::object();
        guard.set("cycles_per_sec", micro.simCps);
        guard.set("calib_steps_per_sec", micro.calibSps);
        guard.set("calibrated_ratio", micro.ratio());
        guard.set("obs_on_cycles_per_sec", on_cps);
        guard.set("reps", reps);
        guard.set("cycles", static_cast<std::int64_t>(cycles));
        doc.set("guard", std::move(guard));
        JsonValue points = JsonValue::object();
        points.set("router_micro", pointJson(micro));
        JsonValue cl = pointJson(closed);
        cl.set("idle_skip_off_cycles_per_sec", noskip_cps);
        cl.set("idle_skip_speedup", skip_gain);
        points.set("closedloop_8x8", std::move(cl));
        JsonValue cl32 = JsonValue::object();
        cl32.set("wall_cycles_per_sec_shards1", wall1);
        cl32.set("wall_cycles_per_sec_sharded", wallN);
        cl32.set("shards", static_cast<std::int64_t>(cl32_shards));
        cl32.set("shard_speedup", shard_speedup);
        cl32.set("hw_threads",
                 static_cast<std::int64_t>(hw_threads));
        points.set("closedloop_32x32", std::move(cl32));
        doc.set("points", std::move(points));
        std::ofstream out(file);
        if (!out) {
            std::fprintf(stderr,
                         "afcsim-obs-guard: cannot write '%s'\n",
                         file.c_str());
            return 1;
        }
        out << doc.dump(2) << '\n';
        std::printf("recorded baseline -> %s\n", file.c_str());
        return 0;
    }

    if (mode != "check") {
        std::fprintf(stderr,
                     "afcsim-obs-guard: unknown mode '%s' "
                     "(want record or check)\n",
                     mode.c_str());
        return 2;
    }

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr,
                     "afcsim-obs-guard: no baseline '%s' "
                     "(run mode=record first)\n",
                     file.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    JsonValue doc = JsonValue::parse(ss.str(), &error);
    if (!error.empty() || !doc.has("guard")) {
        std::fprintf(stderr,
                     "afcsim-obs-guard: bad baseline '%s': %s\n",
                     file.c_str(),
                     error.empty() ? "missing guard block"
                                   : error.c_str());
        return 1;
    }
    int attempts = static_cast<int>(opt.getInt("attempts", 3));
    bool ok = checkPoint(
        "router_micro", micro.ratio(),
        doc.at("guard").at("calibrated_ratio").asDouble(), tolerance,
        attempts, [&] {
            return bestOf(
                [&] { return measureRouterMicroCps(off, cycles); },
                reps);
        });
    // Per-point block (absent in baselines from older builds).
    if (doc.has("points")) {
        const JsonValue &points = doc.at("points");
        if (points.has("closedloop_8x8")) {
            ok = checkPoint("closedloop_8x8", closed.ratio(),
                            points.at("closedloop_8x8")
                                .at("calibrated_ratio")
                                .asDouble(),
                            cl_tolerance, attempts,
                            [&] {
                                return bestOf(
                                    [&] {
                                        return measureClosedLoopCps(
                                            off, cl_div);
                                    },
                                    reps);
                            }) &&
                 ok;
        }
    }
    // Multi-thread speedup floor: absolute (not baseline-relative) —
    // the sharded kernel's contract is ">= cl32_floor x at
    // cl32_shards shards on the 32x32 closed loop", provided the
    // host can actually run the shards concurrently. On smaller
    // hosts the measurement above is reported but not enforced.
    if (hw_threads >= static_cast<unsigned>(cl32_shards)) {
        int attempts32 = attempts;
        bool ok32 = false;
        for (int a = 0; a < attempts32; ++a) {
            std::printf("closedloop_32x32: speedup floor %.2fx, "
                        "measured %.2fx%s\n",
                        cl32_floor, shard_speedup, a ? " (retry)" : "");
            if (shard_speedup >= cl32_floor) {
                ok32 = true;
                break;
            }
            if (a + 1 < attempts32)
                shard_speedup = measure32();
        }
        if (!ok32) {
            std::fprintf(stderr,
                         "afcsim-obs-guard: FAIL: closedloop_32x32 "
                         "shards=%d wall-clock speedup %.2fx is below "
                         "the %.2fx floor (%d attempts)\n",
                         cl32_shards, shard_speedup, cl32_floor,
                         attempts32);
            ok = false;
        }
    } else {
        std::printf("closedloop_32x32: speedup floor not enforced "
                    "(%u hw threads < %d shards)\n",
                    hw_threads, cl32_shards);
    }
    if (!ok)
        return 1;
    std::printf("PASS: all guard points within tolerance of baseline "
                "(calibrated)\n");
    return 0;
}
