#!/bin/sh
# Extract fenced ```sh blocks from a markdown file and execute them
# against a build tree, so documented commands can never go stale.
#
# Usage: readme_smoke.sh <markdown-file> <build-dir>
#
# Every block runs verbatim in a scratch directory with `./build/`
# rewritten to the given build dir. A marker comment on the line
# before a fence changes the mode:
#   <!-- readme-smoke: skip -->       do not touch the block
#   <!-- readme-smoke: check-only --> only verify each command's
#                                     binary exists and is executable
set -eu

README=${1:?usage: readme_smoke.sh <markdown-file> <build-dir>}
BUILD_DIR=${2:?usage: readme_smoke.sh <markdown-file> <build-dir>}
README=$(cd "$(dirname "$README")" && pwd)/$(basename "$README")
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
mkdir "$WORK/scratch"

# Commands run in a scratch dir (artifacts never pollute the repo),
# but may reference repo-relative inputs like examples/example.cfg —
# symlink the repo's top-level entries in.
README_DIR=$(dirname "$README")
for entry in "$README_DIR"/*; do
    name=$(basename "$entry")
    [ "$README_DIR/$name" = "$BUILD_DIR" ] && continue
    ln -s "$entry" "$WORK/scratch/$name" 2>/dev/null || true
done

# Split the fenced sh blocks into numbered files; line 1 of each file
# is the mode selected by the marker preceding the fence.
awk -v out="$WORK/block" '
    /<!-- readme-smoke: skip -->/       { mode = "skip"; next }
    /<!-- readme-smoke: check-only -->/ { mode = "check-only"; next }
    /^```sh[ \t]*$/ {
        inblock = 1; file = sprintf("%s%03d.sh", out, ++n)
        print (mode ? mode : "run") > file; mode = ""; next
    }
    /^```/  { inblock = 0; next }
    inblock { print >> file }
' "$README"

blocks=0
ran=0
checked=0
status=0
for block in "$WORK"/block*.sh; do
    [ -e "$block" ] || break
    blocks=$((blocks + 1))
    mode=$(head -n 1 "$block")
    body="$WORK/body.sh"
    tail -n +2 "$block" | sed "s#\\./build/#$BUILD_DIR/#g" > "$body"
    case "$mode" in
      skip)
        echo "== block $blocks: skipped"
        ;;
      check-only)
        echo "== block $blocks: checking binaries"
        # Join backslash continuations, then test the first token of
        # every non-comment command line.
        sed -e ':a' -e '/\\$/{N; s/\\\n//; ba' -e '}' "$body" |
        while IFS= read -r line; do
            set -- $line
            [ $# -gt 0 ] || continue
            case "$1" in \#*) continue ;; esac
            case "$1" in
              */*)
                if [ ! -x "$1" ]; then
                    echo "MISSING binary: $1 (documented in $README)"
                    exit 1
                fi
                echo "   ok: $1"
                ;;
            esac
        done || status=1
        checked=$((checked + 1))
        ;;
      run)
        echo "== block $blocks: running"
        sed 's/^/   $ /' "$body"
        if ! (cd "$WORK/scratch" && sh -e "$body" >"$WORK/out.log" 2>&1)
        then
            echo "FAILED block $blocks; output:"
            cat "$WORK/out.log"
            status=1
        fi
        ran=$((ran + 1))
        ;;
      *)
        echo "unknown mode '$mode' for block $blocks"
        status=1
        ;;
    esac
done

echo "readme_smoke: $blocks block(s): $ran run, $checked checked"
if [ "$blocks" -eq 0 ]; then
    echo "readme_smoke: no \`\`\`sh blocks found in $README"
    status=1
fi
exit $status
